package cluster

import (
	"errors"
	"testing"
	"time"

	"pran/internal/frame"
	"pran/internal/phy"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCostModel()
	bad.TurboPerBitIter = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero coefficient accepted")
	}
}

func TestAllocCostGrowsWithPRB(t *testing.T) {
	m := DefaultCostModel()
	prev := time.Duration(0)
	for _, nprb := range []int{5, 10, 25, 50, 100} {
		c := m.AllocCost(frame.Allocation{RNTI: 1, NumPRB: nprb, MCS: 15, SNRdB: 15})
		if c <= prev {
			t.Fatalf("cost not increasing at %d PRB", nprb)
		}
		prev = c
	}
}

func TestAllocCostGrowsWithMCS(t *testing.T) {
	m := DefaultCostModel()
	prev := time.Duration(0)
	for _, mcs := range []phy.MCS{0, 6, 12, 18, 24, 28} {
		// Hold the SNR margin constant so iteration count stays fixed and
		// the trend reflects bits-to-process.
		c := m.AllocCost(frame.Allocation{RNTI: 1, NumPRB: 50, MCS: mcs, SNRdB: mcs.OperatingSNR() + 2})
		if c <= prev {
			t.Fatalf("cost not increasing at MCS %d", mcs)
		}
		prev = c
	}
}

func TestTurboDominatesAtHighMCS(t *testing.T) {
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, NumPRB: 100, MCS: 28, SNRdB: phy.MCS(28).OperatingSNR()}
	total := m.AllocCost(a)
	// Rebuild just the turbo share.
	tbs, _ := a.MCS.TransportBlockSize(a.NumPRB)
	iters := ExpectedTurboIterations(a.MCS, a.SNRdB)
	turbo := time.Duration(float64(tbs+24) * iters * m.TurboPerBitIter * float64(time.Second))
	if float64(turbo)/float64(total) < 0.5 {
		t.Fatalf("turbo share %v of %v below 50%%", turbo, total)
	}
}

func TestExpectedTurboIterations(t *testing.T) {
	op := phy.MCS(15).OperatingSNR()
	atOp := ExpectedTurboIterations(15, op)
	above := ExpectedTurboIterations(15, op+5)
	below := ExpectedTurboIterations(15, op-3)
	if !(below >= atOp && atOp > above) {
		t.Fatalf("iterations not decreasing with margin: %v %v %v", below, atOp, above)
	}
	if above < 1.5 || below > 8 {
		t.Fatalf("iteration clamps broken: %v %v", above, below)
	}
}

func TestCellOverheadScalesWithAntennasAndBW(t *testing.T) {
	m := DefaultCostModel()
	o1 := m.CellOverhead(phy.BW10MHz, 1)
	o2 := m.CellOverhead(phy.BW10MHz, 2)
	if o2 != 2*o1 {
		t.Fatalf("antennas: %v vs %v", o2, o1)
	}
	if m.CellOverhead(phy.BW20MHz, 1) <= o1 {
		t.Fatal("wider bandwidth should cost more")
	}
}

func TestSubframeCostSumsAllocations(t *testing.T) {
	m := DefaultCostModel()
	w := frame.SubframeWork{
		Allocations: []frame.Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 10, MCS: 10, SNRdB: 10},
			{RNTI: 2, FirstPRB: 10, NumPRB: 10, MCS: 10, SNRdB: 10},
		},
	}
	got := m.SubframeCost(w, phy.BW10MHz, 2)
	want := m.CellOverhead(phy.BW10MHz, 2) + 2*m.AllocCost(w.Allocations[0])
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCoreFraction(t *testing.T) {
	if CoreFraction(time.Millisecond) != 1 {
		t.Fatal("1 ms per subframe must be exactly one core")
	}
	if CoreFraction(250*time.Microsecond) != 0.25 {
		t.Fatal("quarter load wrong")
	}
}

func TestUtilizationDemandMonotone(t *testing.T) {
	m := DefaultCostModel()
	prev := -1.0
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		d := m.UtilizationDemand(phy.BW20MHz, 2, u, 15, 18)
		if d <= prev {
			t.Fatalf("demand not increasing at util %v", u)
		}
		prev = d
	}
	// Clamps.
	if m.UtilizationDemand(phy.BW20MHz, 2, -1, 15, 18) != m.UtilizationDemand(phy.BW20MHz, 2, 0, 15, 18) {
		t.Fatal("negative utilization not clamped")
	}
	if m.UtilizationDemand(phy.BW20MHz, 2, 2, 15, 18) != m.UtilizationDemand(phy.BW20MHz, 2, 1, 15, 18) {
		t.Fatal("oversized utilization not clamped")
	}
}

func TestCalibrateProducesPlausibleModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	m, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Turbo per bit-iteration should dwarf CRC per bit.
	if m.TurboPerBitIter < 5*m.CRCPerBit {
		t.Fatalf("turbo %.3g not ≫ CRC %.3g", m.TurboPerBitIter, m.CRCPerBit)
	}
	// 64-QAM demod costs more than QPSK per RE.
	if m.DemodPerRE64QAM <= m.DemodPerREQPSK {
		t.Fatalf("demod cost ordering wrong: %g vs %g", m.DemodPerRE64QAM, m.DemodPerREQPSK)
	}
	// A fully loaded 20 MHz high-MCS subframe costs between 0.1 ms and
	// a few seconds on one reference core: pure Go DSP runs tens of times
	// slower than the SIMD C stacks the paper used, which is why the data
	// plane exposes a deadline-scale knob (see internal/dataplane); the
	// *shape* across MCS/PRB is what carries over. The upper bound only
	// guards against unit errors (ms vs s would miss by orders of
	// magnitude) — it is deliberately loose enough for race-instrumented
	// runs on a loaded single-core CI box, where calibration coefficients
	// inflate severalfold.
	c := m.SubframeCost(frame.SubframeWork{Allocations: []frame.Allocation{
		{RNTI: 1, NumPRB: 100, MCS: 25, SNRdB: phy.MCS(25).OperatingSNR() + 1},
	}}, phy.BW20MHz, 1)
	if c < 100*time.Microsecond || c > 5*time.Second {
		t.Fatalf("calibrated full subframe cost %v implausible", c)
	}
}

func TestClusterLifecycle(t *testing.T) {
	c := New()
	if err := c.Add(Server{ID: 1, Cores: 8, SpeedFactor: 1, State: Active}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Server{ID: 1, Cores: 8, SpeedFactor: 1}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := c.Add(Server{ID: 2, Cores: 0, SpeedFactor: 1}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if err := c.Add(Server{ID: 2, Cores: 4, SpeedFactor: 0}); err == nil {
		t.Fatal("zero speed accepted")
	}
	s, err := c.Get(1)
	if err != nil || s.Capacity() != 8 {
		t.Fatalf("get: %+v, %v", s, err)
	}
	if _, err := c.Get(99); !errors.Is(err, ErrNoSuchServer) {
		t.Fatal("missing server not reported")
	}
}

func TestClusterStateMachine(t *testing.T) {
	c := New()
	_ = c.Add(Server{ID: 1, Cores: 4, SpeedFactor: 1, State: Standby})
	if err := c.SetState(1, Active); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetState(1, Active); !errors.Is(err, ErrBadTransition) {
		t.Fatal("failed→active allowed")
	}
	if err := c.Repair(1); err != nil {
		t.Fatal(err)
	}
	s, _ := c.Get(1)
	if s.State != Standby {
		t.Fatalf("after repair: %v", s.State)
	}
	if err := c.Repair(1); err == nil {
		t.Fatal("repairing non-failed server allowed")
	}
	if err := c.Repair(9); !errors.Is(err, ErrNoSuchServer) {
		t.Fatal("repairing unknown server")
	}
	if err := c.SetState(9, Active); !errors.Is(err, ErrNoSuchServer) {
		t.Fatal("state change on unknown server")
	}
}

func TestClusterCapacityAndCounts(t *testing.T) {
	c, err := Uniform(5, 2, 8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveCapacity(); got != 16 {
		t.Fatalf("capacity %v", got)
	}
	counts := c.Counts()
	if counts[Active] != 2 || counts[Standby] != 3 {
		t.Fatalf("counts %v", counts)
	}
	if len(c.InState(Standby)) != 3 {
		t.Fatal("InState wrong")
	}
	// Draining/failed capacity drops out.
	_ = c.SetState(0, Draining)
	if got := c.ActiveCapacity(); got != 8 {
		t.Fatalf("capacity after drain %v", got)
	}
	// Deterministic order.
	ss := c.Servers()
	for i := 1; i < len(ss); i++ {
		if ss[i].ID <= ss[i-1].ID {
			t.Fatal("servers not sorted")
		}
	}
	if _, err := Uniform(2, 3, 8, 1); err == nil {
		t.Fatal("nActive > n accepted")
	}
}

func TestServerStateString(t *testing.T) {
	for st, want := range map[ServerState]string{Standby: "standby", Active: "active", Draining: "draining", Failed: "failed"} {
		if st.String() != want {
			t.Fatalf("%d → %q", st, st.String())
		}
	}
	if ServerState(9).String() == "" {
		t.Fatal("unknown state must print")
	}
}

func TestCostModelKernelSelection(t *testing.T) {
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 100, MCS: 27, SNRdB: phy.MCS(27).OperatingSNR()}
	base := m.AllocCost(a)
	fast := m.WithKernel(phy.KernelInt16).AllocCost(a)
	if fast >= base {
		t.Fatalf("int16 alloc cost %v not below float32 %v", fast, base)
	}
	// WithKernel is a copy: the receiver must keep its kernel.
	if m.Kernel != phy.KernelFloat32 {
		t.Fatal("WithKernel mutated the receiver")
	}
	// The parallel service-time model must use the same coefficient switch.
	baseW := m.AllocCostWorkers(a, 4)
	fastW := m.WithKernel(phy.KernelInt16).AllocCostWorkers(a, 4)
	if fastW >= baseW {
		t.Fatalf("int16 parallel cost %v not below float32 %v", fastW, baseW)
	}
	// A zero int16 coefficient must fail validation.
	bad := m
	bad.TurboPerBitIterI16 = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero TurboPerBitIterI16 accepted")
	}
}

func TestCostModelFrontEndSelection(t *testing.T) {
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 100, MCS: 27, SNRdB: phy.MCS(27).OperatingSNR()}
	fused := m.AllocCost(a) // FrontEndFused is the zero value, the default
	staged := m.WithFrontEnd(phy.FrontEndStaged).AllocCost(a)
	if fused >= staged {
		t.Fatalf("fused alloc cost %v not below staged %v", fused, staged)
	}
	// WithFrontEnd is a copy: the receiver must keep its front-end.
	if m.FrontEnd != phy.FrontEndFused {
		t.Fatal("WithFrontEnd mutated the receiver")
	}
	// In the parallel service-time model the fused front-end additionally
	// overlaps turbo decoding, so the gap must widen relative to staged.
	fusedW := m.AllocCostWorkers(a, 4)
	stagedW := m.WithFrontEnd(phy.FrontEndStaged).AllocCostWorkers(a, 4)
	if fusedW >= stagedW {
		t.Fatalf("fused parallel cost %v not below staged %v", fusedW, stagedW)
	}
	if stagedW-fusedW <= staged-fused {
		t.Fatalf("parallel fused gap %v not wider than serial gap %v",
			stagedW-fusedW, staged-fused)
	}
	// A zero fused coefficient or a bogus front-end must fail validation.
	bad := m
	bad.FusedPerRE64QAM = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero FusedPerRE64QAM accepted")
	}
	bad = m
	bad.FrontEnd = phy.FrontEnd(9)
	if err := bad.Validate(); err == nil {
		t.Fatal("bogus front-end accepted")
	}
}

func TestCostModelFrontEndVectorSelection(t *testing.T) {
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 100, MCS: 27, SNRdB: phy.MCS(27).OperatingSNR()}
	scalar := m.AllocCost(a) // FrontEndVector defaults to false
	vector := m.WithFrontEndVector(true).AllocCost(a)
	if vector >= scalar {
		t.Fatalf("vector fused alloc cost %v not below scalar %v", vector, scalar)
	}
	// WithFrontEndVector is a copy: the receiver must keep its variant.
	if m.FrontEndVector {
		t.Fatal("WithFrontEndVector mutated the receiver")
	}
	// The vector coefficients only apply to the fused front-end: the staged
	// model must be indifferent to the knob.
	st := m.WithFrontEnd(phy.FrontEndStaged)
	if st.WithFrontEndVector(true).AllocCost(a) != st.AllocCost(a) {
		t.Fatal("FrontEndVector changed the staged front-end cost")
	}
	// The parallel service-time model uses the same coefficient switch.
	if vw, sw := m.WithFrontEndVector(true).AllocCostWorkers(a, 4), m.AllocCostWorkers(a, 4); vw >= sw {
		t.Fatalf("vector fused parallel cost %v not below scalar %v", vw, sw)
	}
	// A zero vector coefficient must fail validation.
	bad := m
	bad.FusedVecPerRE16QAM = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero FusedVecPerRE16QAM accepted")
	}
}

func TestCostModelBatchSelection(t *testing.T) {
	m := DefaultCostModel().WithKernel(phy.KernelInt16)
	a := frame.Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 100, MCS: 27, SNRdB: phy.MCS(27).OperatingSNR()}
	// Cost must fall monotonically with the lockstep width and pin the two
	// calibration endpoints: width 1 charges the scalar coefficient, width
	// 8 (and beyond) the batched one.
	prev := m.AllocCost(a)
	if m.WithBatch(1).AllocCost(a) != prev {
		t.Fatal("width 1 differs from the scalar int16 cost")
	}
	for _, w := range []int{2, 4, 8} {
		c := m.WithBatch(w).AllocCost(a)
		if c >= prev {
			t.Fatalf("width %d cost %v not below previous %v", w, c, prev)
		}
		prev = c
	}
	if m.WithBatch(16).AllocCost(a) != m.WithBatch(8).AllocCost(a) {
		t.Fatal("widths past the calibration endpoint must charge the width-8 coefficient")
	}
	// Batch is inert on the float32 kernel's coefficient switch, and the
	// receiver keeps its width.
	f := DefaultCostModel()
	f.Batch = 8 // bypass WithBatch to probe turboCoeff in isolation
	if f.AllocCost(a) != DefaultCostModel().AllocCost(a) {
		t.Fatal("batch width changed the float32 cost")
	}
	derived := m.WithBatch(8)
	if derived.Batch != 8 || m.Batch != 0 {
		t.Fatal("WithBatch mutated the receiver")
	}
	// The parallel service-time model uses the same coefficient switch, and
	// the batched frontier must beat the scalar one at 4-way parallelism:
	// an MCS that misses the HARQ budget scalar must fit batched.
	if bw, sw := m.WithBatch(8).AllocCostWorkers(a, 4), m.AllocCostWorkers(a, 4); bw >= sw {
		t.Fatalf("batched parallel cost %v not below scalar %v", bw, sw)
	}
	// Validation: negative widths and batching the float32 kernel are
	// configuration errors; a zero batch coefficient is invalid.
	if err := m.WithBatch(-1).Validate(); err == nil {
		t.Fatal("negative batch width accepted")
	}
	if err := DefaultCostModel().WithBatch(8).Validate(); err == nil {
		t.Fatal("batched float32 model accepted")
	}
	bad := m
	bad.TurboPerBitIterI16Batch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero TurboPerBitIterI16Batch accepted")
	}
}

func TestCalibrateMeasuresBothKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("measured calibration")
	}
	m, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if m.TurboPerBitIterI16 <= 0 || m.TurboPerBitIterI16 >= m.TurboPerBitIter {
		t.Fatalf("calibrated int16 turbo coefficient %.3g not below float32 %.3g",
			m.TurboPerBitIterI16, m.TurboPerBitIter)
	}
	if m.TurboPerBitIterI16Batch <= 0 || m.TurboPerBitIterI16Batch >= m.TurboPerBitIterI16 {
		t.Fatalf("calibrated width-8 batch coefficient %.3g not below scalar int16 %.3g",
			m.TurboPerBitIterI16Batch, m.TurboPerBitIterI16)
	}
	// The default-path fused coefficient (vector tiles on AVX2 hosts,
	// scalar tiles otherwise — what the data plane's default actually
	// runs) must come out positive and below the staged per-RE totals it
	// replaces (demod + per-RE share of the descramble/dematch bit costs).
	// The scalar-tile column only gets a loose sanity bound: under the
	// race detector the pure-Go fused pass carries the same instrumented
	// memory traffic as the staged sweeps and the gap closes to noise.
	for _, c := range []struct {
		name                  string
		scalarFused, vecFused float64
		demod                 float64
		bits                  float64 // coded bits per RE
	}{
		{"qpsk", m.FusedPerREQPSK, m.FusedVecPerREQPSK, m.DemodPerREQPSK, 2},
		{"16qam", m.FusedPerRE16QAM, m.FusedVecPerRE16QAM, m.DemodPerRE16QAM, 4},
		{"64qam", m.FusedPerRE64QAM, m.FusedVecPerRE64QAM, m.DemodPerRE64QAM, 6},
	} {
		staged := c.demod + c.bits*(m.DescramblePerBit+m.DematchPerBit)
		def := c.scalarFused
		if phy.FrontEndAVX2() {
			def = c.vecFused
		}
		if def <= 0 || def >= staged {
			t.Fatalf("calibrated fused %s coefficient %.3g not below staged %.3g",
				c.name, def, staged)
		}
		if c.scalarFused <= 0 || c.scalarFused >= 1.5*staged {
			t.Fatalf("calibrated scalar fused %s coefficient %.3g implausible against staged %.3g",
				c.name, c.scalarFused, staged)
		}
	}
	// The vector column must be populated, and the calibrated model must
	// mirror the data plane's default variant. On AVX2 hosts the tile
	// kernels must beat the scalar tiles (generous slack for CI noise).
	for _, c := range []struct {
		name           string
		scalar, vector float64
	}{
		{"qpsk", m.FusedPerREQPSK, m.FusedVecPerREQPSK},
		{"16qam", m.FusedPerRE16QAM, m.FusedVecPerRE16QAM},
		{"64qam", m.FusedPerRE64QAM, m.FusedVecPerRE64QAM},
	} {
		if c.vector <= 0 {
			t.Fatalf("calibrated vector fused %s coefficient %.3g not positive", c.name, c.vector)
		}
		if phy.FrontEndAVX2() && c.vector >= 1.2*c.scalar {
			t.Fatalf("calibrated vector fused %s coefficient %.3g not below scalar %.3g on an AVX2 host",
				c.name, c.vector, c.scalar)
		}
	}
	if m.FrontEndVector != phy.FrontEndAVX2() {
		t.Fatalf("calibrated FrontEndVector %v does not mirror phy.FrontEndAVX2() %v",
			m.FrontEndVector, phy.FrontEndAVX2())
	}
}
