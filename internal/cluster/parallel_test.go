package cluster

import (
	"testing"
	"time"

	"pran/internal/frame"
	"pran/internal/phy"
)

func TestAllocCostWorkersMatchesSerialAtOne(t *testing.T) {
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, NumPRB: 100, MCS: 28, SNRdB: phy.MCS(28).OperatingSNR() + 2}
	if got, want := m.AllocCostWorkers(a, 1), m.AllocCost(a); got != want {
		t.Fatalf("workers=1 cost %v != serial %v", got, want)
	}
}

func TestAllocCostWorkersShrinksServiceTime(t *testing.T) {
	// A high-MCS wide-band TB segments into ~13 code blocks, so service
	// time must drop substantially up to that parallelism and then flatten.
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, NumPRB: 100, MCS: 28, SNRdB: phy.MCS(28).OperatingSNR() + 2}
	serial := m.AllocCost(a)
	prev := serial + time.Hour
	for _, w := range []int{1, 2, 4, 8} {
		c := m.AllocCostWorkers(a, w)
		if c >= prev {
			t.Fatalf("service time not decreasing at %d workers: %v >= %v", w, c, prev)
		}
		prev = c
	}
	if four := m.AllocCostWorkers(a, 4); float64(serial)/float64(four) < 1.5 {
		t.Fatalf("modelled speedup at 4 workers %v → %v is below 1.5×", serial, four)
	}
}

func TestAllocCostWorkersBoundedByBlocks(t *testing.T) {
	// A narrow allocation is a single code block: extra workers must not
	// reduce its cost below serial (they only add dispatch overhead — and
	// the decoder wakes no helpers when C=1, so not even that).
	m := DefaultCostModel()
	a := frame.Allocation{RNTI: 1, NumPRB: 4, MCS: 10, SNRdB: phy.MCS(10).OperatingSNR() + 2}
	serial := m.AllocCost(a)
	if c := m.AllocCostWorkers(a, 8); c < serial {
		t.Fatalf("single-block cost %v dropped below serial %v", c, serial)
	}
}

func TestSubframeCostWorkers(t *testing.T) {
	m := DefaultCostModel()
	w := frame.SubframeWork{
		Cell: 1, TTI: 0,
		Allocations: []frame.Allocation{
			{RNTI: 1, NumPRB: 100, MCS: 28, SNRdB: phy.MCS(28).OperatingSNR() + 2},
		},
	}
	serial := m.SubframeCost(w, phy.BW20MHz, 2)
	par := m.SubframeCostWorkers(w, phy.BW20MHz, 2, 4)
	if par >= serial {
		t.Fatalf("parallel subframe service time %v not below serial %v", par, serial)
	}
	if par <= m.CellOverhead(phy.BW20MHz, 2) {
		t.Fatal("parallel cost lost the cell overhead floor")
	}
}

func TestDispatchPerBlockValidated(t *testing.T) {
	bad := DefaultCostModel()
	bad.DispatchPerBlock = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero DispatchPerBlock accepted")
	}
}
