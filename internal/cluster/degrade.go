package cluster

import (
	"fmt"

	"pran/internal/phy"
)

// DegradationLevel is one rung of PRAN's compute-aware degradation ladder —
// the shared vocabulary between the data plane (which executes degraded
// decodes), the controller (which deliberately places hot cells degraded
// instead of rejecting them), and the scheduler feedback path (MCS capping
// through ranapi). Raising the level trades a bounded amount of link
// performance for a large cut in compute per bit (Rost et al.'s
// complexity-rate tradeoff), turning the pool's overload cliff into a slope:
//
//	level 0: full service — the configured kernel, the full turbo iteration
//	         budget, HARQ soft combining, no MCS cap.
//	level 1: turbo iterations capped at 4 (ample-margin decodes already
//	         early-terminate below that; edge-of-cliff decodes lose their
//	         long tail).
//	level 2: iterations capped at 3 AND the quantized int16 lockstep kernel
//	         forced regardless of the pool's configured kernel — the 3–6×
//	         cheaper arithmetic from E12/E17, within 0.2 dB of float32.
//	level 3: iterations capped at 2 and HARQ retransmission combining shed:
//	         retransmissions decode fresh instead of accumulating LLRs,
//	         dropping the soft-buffer bookkeeping and its memory traffic.
//
// Each rung also carries an MCS cap the controller can push back to the
// scheduler so future allocations arrive cheaper, not just decode cheaper.
// Every rung strictly reduces per-TB decode cost (enforced by the monotone
// ladder property test in internal/dataplane) and never changes the
// CRC-pass/fail outcome of a block both rungs decode successfully — the
// int16 kernel is bit-exact against its own ladder and the iteration cap
// only forgoes decodes that needed the longer budget.
type DegradationLevel uint8

// The ladder's rungs, in increasing severity.
const (
	// DegradeNone is full service (the zero value).
	DegradeNone DegradationLevel = iota
	// DegradeIterCap caps turbo iterations.
	DegradeIterCap
	// DegradeForceI16 additionally forces the int16 batched kernel.
	DegradeForceI16
	// DegradeShedHARQ additionally sheds HARQ soft combining.
	DegradeShedHARQ

	// MaxDegradationLevel is the deepest rung.
	MaxDegradationLevel = DegradeShedHARQ
)

// degradeIterCaps[l] is the turbo iteration cap at level l (0 = the
// decoder's default budget of 8).
var degradeIterCaps = [MaxDegradationLevel + 1]int{0, 4, 3, 2}

// degradeMCSCaps[l] is the scheduler MCS cap at level l: the highest MCS the
// controller lets the scheduler assign to a cell running degraded. Level 0
// is uncapped; the deeper rungs pull new allocations down the TBS ladder so
// arriving work is cheaper to decode, complementing the per-decode knobs.
var degradeMCSCaps = [MaxDegradationLevel + 1]phy.MCS{phy.MaxMCS, 22, 18, 14}

// Clamp limits the level to the ladder's range.
func (l DegradationLevel) Clamp() DegradationLevel {
	if l > MaxDegradationLevel {
		return MaxDegradationLevel
	}
	return l
}

// IterCap returns the turbo iteration cap this level imposes, or 0 for the
// decoder's default budget.
func (l DegradationLevel) IterCap() int { return degradeIterCaps[l.Clamp()] }

// ForcesInt16 reports whether this level overrides the configured decode
// kernel with the quantized int16 lockstep kernel.
func (l DegradationLevel) ForcesInt16() bool { return l.Clamp() >= DegradeForceI16 }

// ShedsHARQ reports whether this level sheds HARQ soft combining
// (retransmissions decode without accumulated LLRs).
func (l DegradationLevel) ShedsHARQ() bool { return l.Clamp() >= DegradeShedHARQ }

// MCSCap returns the highest MCS the scheduler should assign to a cell at
// this level (phy.MaxMCS = uncapped).
func (l DegradationLevel) MCSCap() phy.MCS { return degradeMCSCaps[l.Clamp()] }

// Apply derives the cost model a cell running at this level should be
// charged with: the iteration cap always, plus the int16 kernel (at the
// model's configured lockstep width) when the level forces it. This is how
// the controller prices degraded placements — a hot cell's demand shrinks to
// what its degraded decode actually costs.
func (l DegradationLevel) Apply(m CostModel) CostModel {
	l = l.Clamp()
	if c := l.IterCap(); c > 0 {
		m = m.WithIterCap(c)
	}
	if l.ForcesInt16() {
		m = m.WithKernel(phy.KernelInt16)
	}
	return m
}

// String implements fmt.Stringer.
func (l DegradationLevel) String() string {
	switch l.Clamp() {
	case DegradeNone:
		return "full"
	case DegradeIterCap:
		return "iter-cap"
	case DegradeForceI16:
		return "force-i16"
	default:
		return "shed-harq"
	}
}

// Validate checks the level is a defined rung.
func (l DegradationLevel) Validate() error {
	if l > MaxDegradationLevel {
		return fmt.Errorf("cluster: degradation level %d beyond %d: %w", l, MaxDegradationLevel, phy.ErrBadParameter)
	}
	return nil
}
