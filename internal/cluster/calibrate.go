package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"pran/internal/phy"
)

// Calibrate measures the host's actual per-stage DSP costs by running the
// real internal/phy implementations and returns a CostModel whose
// coefficients reflect this machine. The run takes a few hundred
// milliseconds. Use DefaultCostModel when speed matters more than fidelity
// (unit tests); use Calibrate in benchmarks and experiments.
func Calibrate() (CostModel, error) {
	var m CostModel
	rng := rand.New(rand.NewSource(12345))

	// FFT: 1024-point plan, per-butterfly-unit cost.
	{
		const n = 1024
		f, err := phy.NewFFT(n)
		if err != nil {
			return m, fmt.Errorf("cluster: calibrate FFT: %w", err)
		}
		buf := make([]complex128, n)
		for i := range buf {
			buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		reps := 2000
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f.Forward(buf); err != nil {
				return m, err
			}
		}
		el := time.Since(start).Seconds()
		m.FFTPerButterfly = el / float64(reps) / (n * math.Log2(n))
	}

	// Demodulation per RE for each constellation.
	for _, mod := range []phy.Modulation{phy.QPSK, phy.QAM16, phy.QAM64} {
		const nSym = 14400
		bits := make([]byte, nSym*mod.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms, err := phy.Modulate(nil, bits, mod)
		if err != nil {
			return m, err
		}
		llr := make([]float32, 0, len(bits))
		reps := 30
		start := time.Now()
		for i := 0; i < reps; i++ {
			llr = llr[:0]
			llr, err = phy.Demodulate(llr, syms, mod, 0.1)
			if err != nil {
				return m, err
			}
		}
		per := time.Since(start).Seconds() / float64(reps) / float64(nSym)
		switch mod {
		case phy.QPSK:
			m.DemodPerREQPSK = per
		case phy.QAM16:
			m.DemodPerRE16QAM = per
		case phy.QAM64:
			m.DemodPerRE64QAM = per
		}
	}

	// Descrambling per coded bit, including scrambler setup amortized over
	// one subframe's worth of bits (as the data plane pays it).
	{
		const n = 50000
		llr := make([]float32, n)
		for i := range llr {
			llr[i] = rng.Float32()*2 - 1
		}
		reps := 60
		start := time.Now()
		for i := 0; i < reps; i++ {
			s := phy.NewScrambler(phy.ScramblerInit(uint16(i), 7, 3))
			s.DescrambleLLR(llr)
		}
		m.DescramblePerBit = time.Since(start).Seconds() / float64(reps) / n
	}

	// De-rate-matching per coded bit.
	{
		const k = 6144
		rm, err := phy.NewRateMatcher(k)
		if err != nil {
			return m, err
		}
		e := 3 * (k + 4)
		llr := make([]float32, e)
		ld0 := make([]float32, k+4)
		ld1 := make([]float32, k+4)
		ld2 := make([]float32, k+4)
		reps := 60
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := rm.SoftDematch(ld0, ld1, ld2, llr, 0); err != nil {
				return m, err
			}
		}
		m.DematchPerBit = time.Since(start).Seconds() / float64(reps) / float64(e)
	}

	// Fused front-end per RE for each constellation, in two columns: the
	// scalar tile pipeline (NoVectorFrontEnd) and the default pipeline,
	// which uses the AVX2 tile kernels when the host has them. Each column
	// runs a serial fused TransportProcessor over a representative
	// allocation per modulation and reads the measured Timings.FrontEnd,
	// which covers the whole two-phase pass (tile demod + keystream
	// sign-fold + soft de-rate-match scatter). On hosts without AVX2 the
	// two columns measure the same code, so FusedVecPerRE* ≈ FusedPerRE*.
	for _, cfg := range []struct {
		mcs    phy.MCS
		scalar *float64
		vector *float64
	}{
		{4, &m.FusedPerREQPSK, &m.FusedVecPerREQPSK},    // QPSK
		{13, &m.FusedPerRE16QAM, &m.FusedVecPerRE16QAM}, // 16-QAM
		{22, &m.FusedPerRE64QAM, &m.FusedVecPerRE64QAM}, // 64-QAM
	} {
		const nprb = 50
		for _, col := range []struct {
			coef     *float64
			noVector bool
		}{
			{cfg.scalar, true},
			{cfg.vector, false},
		} {
			p, err := phy.NewTransportProcessorOpts(cfg.mcs, nprb, phy.ProcOptions{
				FrontEnd: phy.FrontEndFused, NoVectorFrontEnd: col.noVector,
			})
			if err != nil {
				return m, fmt.Errorf("cluster: calibrate fused front-end: %w", err)
			}
			payload := make([]byte, p.TransportBlockSize())
			for i := range payload {
				payload[i] = byte(rng.Intn(2))
			}
			syms, err := p.Encode(payload, 9, 301, 2, 0)
			if err != nil {
				return m, err
			}
			ch := phy.NewAWGNChannel(cfg.mcs.OperatingSNR()+5, 99)
			rx := append([]complex128(nil), syms...)
			ch.Apply(rx)
			reps := 20
			var el time.Duration
			for i := 0; i < reps; i++ {
				if _, err := p.Decode(rx, ch.N0(), 9, 301, 2, 0, nil); err != nil {
					return m, err
				}
				el += p.Timings.FrontEnd
			}
			*col.coef = el.Seconds() / float64(reps) / float64(p.NumSymbols())
		}
	}
	// The calibrated model mirrors the data plane's default front-end
	// variant: vector tile kernels whenever the host supports them.
	m.FrontEndVector = phy.FrontEndAVX2()

	// Turbo decoding per information bit per iteration, measured once per
	// kernel: fixed iteration count, no early termination.
	{
		const k = 6144
		enc, err := phy.NewTurboEncoder(k)
		if err != nil {
			return m, err
		}
		input := make([]byte, k)
		for i := range input {
			input[i] = byte(rng.Intn(2))
		}
		d0 := make([]byte, k+4)
		d1 := make([]byte, k+4)
		d2 := make([]byte, k+4)
		if err := enc.Encode(d0, d1, d2, input); err != nil {
			return m, err
		}
		toLLR := func(bits []byte) []float32 {
			l := make([]float32, len(bits))
			for i, b := range bits {
				if b == 0 {
					l[i] = 2
				} else {
					l[i] = -2
				}
			}
			return l
		}
		l0, l1, l2 := toLLR(d0), toLLR(d1), toLLR(d2)
		out := make([]byte, k)
		const iters = 4
		measure := func(kernel phy.DecodeKernel) (float64, error) {
			dec, err := phy.NewTurboDecoderKernel(k, kernel)
			if err != nil {
				return 0, err
			}
			dec.MaxIterations = iters
			reps := 12
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := dec.Decode(out, l0, l1, l2); err != nil {
					return 0, err
				}
			}
			return time.Since(start).Seconds() / float64(reps) / (k * iters), nil
		}
		if m.TurboPerBitIter, err = measure(phy.KernelFloat32); err != nil {
			return m, err
		}
		if m.TurboPerBitIterI16, err = measure(phy.KernelInt16); err != nil {
			return m, err
		}

		// Width-8 lockstep batch: eight lanes of the same block through
		// phy.BatchDecoderI16 with the same fixed iteration count; the
		// coefficient is per bit per iteration per lane.
		{
			const width = 8
			bd, err := phy.NewBatchDecoderI16(k, width)
			if err != nil {
				return m, err
			}
			bd.MaxIterations = iters
			blocks := make([][]byte, width)
			bl0 := make([][]float32, width)
			bl1 := make([][]float32, width)
			bl2 := make([][]float32, width)
			for b := 0; b < width; b++ {
				blocks[b] = make([]byte, k)
				bl0[b], bl1[b], bl2[b] = l0, l1, l2
			}
			never := func([]byte) bool { return false }
			reps := 6
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, _, err := bd.Decode(blocks, bl0, bl1, bl2, never, nil); err != nil {
					return m, err
				}
			}
			m.TurboPerBitIterI16Batch = time.Since(start).Seconds() / float64(reps) / (k * iters * width)
		}
	}

	// CRC per bit.
	{
		const n = 60000
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		reps := 60
		start := time.Now()
		for i := 0; i < reps; i++ {
			_ = phy.CRC24A(bits)
		}
		m.CRCPerBit = time.Since(start).Seconds() / float64(reps) / n
	}

	// Downlink encode chain per information bit (full TransportProcessor
	// encode at a mid-range configuration).
	{
		p, err := phy.NewTransportProcessor(17, 50)
		if err != nil {
			return m, err
		}
		payload := make([]byte, p.TransportBlockSize())
		for i := range payload {
			payload[i] = byte(rng.Intn(2))
		}
		reps := 20
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := p.Encode(payload, 1, 1, 0, 0); err != nil {
				return m, err
			}
		}
		m.EncodePerBit = time.Since(start).Seconds() / float64(reps) / float64(p.TransportBlockSize())
	}

	// Parallel dispatch overhead: the wake-and-join round trip through a
	// resident goroutine, which is what handing a code block to a
	// phy.ParallelDecoder worker costs on top of the decode itself.
	{
		work := make(chan struct{})
		var wg sync.WaitGroup
		go func() {
			for range work {
				wg.Done()
			}
		}()
		const reps = 2000
		start := time.Now()
		for i := 0; i < reps; i++ {
			wg.Add(1)
			work <- struct{}{}
			wg.Wait()
		}
		close(work)
		m.DispatchPerBlock = time.Since(start).Seconds() / reps
	}

	if err := m.Validate(); err != nil {
		return m, fmt.Errorf("cluster: calibration produced invalid model: %w", err)
	}
	return m, nil
}
