package dataplane

import (
	"bytes"
	"errors"
	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
)

// fadingEndToEnd runs one subframe through a fading channel and returns the
// decode results keyed by RNTI.
func fadingEndToEnd(t *testing.T, profile phy.MultipathProfile, equalize bool, snrBoost float64) map[frame.RNTI]*Task {
	t.Helper()
	cfg := testCellConfig()
	pool := testPool(t, Config{Workers: 2, Policy: EDF, DeadlineScale: 1000})
	rrh, err := NewRRHEmulator(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	fading, err := phy.NewChannelResponse(profile, cfg.Bandwidth, 23)
	if err != nil {
		t.Fatal(err)
	}
	rrh.Fading = fading
	cp, err := NewCellProcessor(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	cp.EstimateChannel = equalize

	work := frame.SubframeWork{
		Cell: 1, TTI: 5,
		Allocations: []frame.Allocation{
			{RNTI: 300, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + snrBoost},
			{RNTI: 301, FirstPRB: 3, NumPRB: 3, MCS: 12, SNRdB: phy.MCS(12).OperatingSNR() + snrBoost},
		},
	}
	payloads, err := rrh.RandomPayloads(work)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rrh.Emit(work, payloads)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[frame.RNTI]*Task)
	done := make(chan *Task, len(work.Allocations))
	if err := cp.IngestSubframe(samples, work, func(tk *Task) { done <- tk }); err != nil {
		t.Fatal(err)
	}
	for range work.Allocations {
		tk := <-done
		results[tk.Alloc.RNTI] = tk
		if tk.Err == nil {
			for i, a := range work.Allocations {
				if a.RNTI == tk.Alloc.RNTI && !bytes.Equal(tk.Payload, payloads[i]) {
					t.Fatalf("rnti %d: wrong payload decoded", a.RNTI)
				}
			}
		}
	}
	if equalize && cp.EstimateTime <= 0 {
		t.Fatal("estimation time not accounted")
	}
	return results
}

func TestFadingWithEqualizationDecodes(t *testing.T) {
	// EPA fading + pilot-based equalization at a healthy SNR margin must
	// decode both UEs.
	results := fadingEndToEnd(t, phy.ProfileEPA, true, 8)
	for rnti, tk := range results {
		if tk.Err != nil {
			t.Fatalf("rnti %d failed under equalized fading: %v", rnti, tk.Err)
		}
	}
}

func TestFadingWithoutEqualizationFails(t *testing.T) {
	// The same channel without equalization must break at least one UE —
	// rotated constellations are undecodable. This is the control that
	// proves the estimator is doing real work.
	results := fadingEndToEnd(t, phy.ProfileEVA, false, 8)
	failures := 0
	for _, tk := range results {
		if errors.Is(tk.Err, phy.ErrCRC) {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("un-equalized fading decoded cleanly; channel not applied?")
	}
}

func TestFlatFadingMatchesAWGNPath(t *testing.T) {
	// A flat (single-tap) channel with equalization behaves like plain
	// AWGN: both UEs decode.
	results := fadingEndToEnd(t, phy.ProfileFlat, true, 6)
	for rnti, tk := range results {
		if tk.Err != nil {
			t.Fatalf("rnti %d failed under flat fading: %v", rnti, tk.Err)
		}
	}
}

func TestEqualizationHarmlessWithoutFading(t *testing.T) {
	// Equalization enabled against an identity channel must not hurt: the
	// pilots estimate Ĥ ≈ 1.
	cfg := testCellConfig()
	pool := testPool(t, Config{Workers: 1, Policy: EDF, DeadlineScale: 1000})
	rrh, _ := NewRRHEmulator(cfg, 31)
	cp, _ := NewCellProcessor(cfg, pool)
	cp.EstimateChannel = true
	work := frame.SubframeWork{
		Cell: 1, TTI: 2,
		Allocations: []frame.Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 4, MCS: 10, SNRdB: phy.MCS(10).OperatingSNR() + 5},
		},
	}
	payloads, _ := rrh.RandomPayloads(work)
	samples, err := rrh.Emit(work, payloads)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Task, 1)
	if err := cp.IngestSubframe(samples, work, func(tk *Task) { done <- tk }); err != nil {
		t.Fatal(err)
	}
	tk := <-done
	if tk.Err != nil {
		t.Fatalf("equalization against identity channel broke decode: %v", tk.Err)
	}
}
