package dataplane

import (
	"fmt"
	"math"
	"time"

	"pran/internal/frame"
	"pran/internal/phy"
)

// CellProcessor is one cell's ingest path in the pool: it receives the
// cell's uplink subframe as time-domain I/Q (what the fronthaul delivers
// under the RF-IQ split), performs the OFDM FFT stage, extracts each
// scheduled allocation's resource elements, and submits per-UE decode tasks
// to the worker pool.
//
// The FFT stage runs on the ingest caller (one per cell per TTI), mirroring
// PRAN's design where cell-level low-PHY work is pinned and only UE-level
// work is pool-scheduled. A CellProcessor is not safe for concurrent use.
type CellProcessor struct {
	cfg   frame.CellConfig
	ofdm  *phy.OFDMModulator
	grid  *frame.Grid
	harq  *HARQManager
	pool  *Pool
	tel   *cellTelemetry // nil when the pool's telemetry is disabled
	reBuf []complex128   // reusable RE extraction buffer (max allocation)
	// FFTTime accumulates time spent in the cell-level FFT stage.
	FFTTime time.Duration

	// EstimateChannel enables pilot-based LS channel estimation and
	// per-subcarrier equalization of the data symbols — required when the
	// link applies a fading response (RRHEmulator.Fading), harmless
	// otherwise.
	EstimateChannel bool
	estBuf          []complex128 // running channel estimate
	estRow          []complex128 // per-row LS scratch
	pilotRef        []complex128 // known pilot values
	// EstimateTime accumulates time in estimation + equalization.
	EstimateTime time.Duration
}

// NewCellProcessor builds the ingest path for one cell.
func NewCellProcessor(cfg frame.CellConfig, pool *Pool) (*CellProcessor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ofdm, err := phy.NewOFDMModulator(cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	grid, err := frame.NewGrid(cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	c := &CellProcessor{
		cfg:   cfg,
		ofdm:  ofdm,
		grid:  grid,
		harq:  NewHARQManager(),
		pool:  pool,
		reBuf: make([]complex128, cfg.Bandwidth.PRB()*phy.DataREsPerPRB),
	}
	if pool.tel != nil {
		c.tel = newCellTelemetry(pool.tel, cfg.ID)
	}
	return c, nil
}

// Config returns the cell configuration.
func (c *CellProcessor) Config() frame.CellConfig { return c.cfg }

// HARQ exposes the cell's HARQ manager (the controller migrates this state
// when re-placing a cell).
func (c *CellProcessor) HARQ() *HARQManager { return c.harq }

// IngestSubframe processes one received subframe: samples holds
// SymbolsPerSubframe × FFTSize time-domain samples (symbol-major) and work
// describes the scheduled allocations. Each task's noise estimate derives
// from its allocation's SNR (as a real receiver's channel estimator would
// supply). Per-UE tasks inherit deadline = now + pool budget; onDone
// (optional) is attached to every task.
func (c *CellProcessor) IngestSubframe(samples []complex128, work frame.SubframeWork, onDone func(*Task)) error {
	fftSize := c.ofdm.FFTSize()
	if len(samples) != fftSize*phy.SymbolsPerSubframe {
		return fmt.Errorf("dataplane: %d samples, want %d: %w", len(samples), fftSize*phy.SymbolsPerSubframe, phy.ErrBadParameter)
	}
	if err := work.Validate(c.cfg.Bandwidth); err != nil {
		return err
	}
	now := time.Now()
	deadline := now.Add(c.pool.cfg.Budget())
	// One level read covers the subframe's HARQ-shed decision; Submit
	// re-reads when stamping each task. A transition between the two reads
	// is a harmless one-TTI transient (a task may decode degraded with a
	// combining buffer it no longer needed, or once without one).
	lvl := c.pool.CellLevel(work.Cell)

	// Cell-level FFT stage: time domain → resource grid.
	fftStart := time.Now()
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		row, err := c.grid.Symbol(l)
		if err != nil {
			return err
		}
		if err := c.ofdm.Demodulate(row, samples[l*fftSize:(l+1)*fftSize]); err != nil {
			return err
		}
	}
	c.FFTTime += time.Since(fftStart)

	// Channel estimation + equalization (cell-level, shared by all UEs).
	noiseEnhancement := 1.0
	if c.EstimateChannel {
		estStart := time.Now()
		enh, err := c.equalizeSubframe(work.TTI)
		if err != nil {
			return err
		}
		noiseEnhancement = enh
		c.EstimateTime += time.Since(estStart)
	}

	// UE-level tasks: extract REs and submit.
	for _, a := range work.Allocations {
		res := make([]complex128, a.NumPRB*phy.DataREsPerPRB)
		if err := c.grid.Extract(res, a); err != nil {
			return err
		}
		t := &Task{
			Cell:     work.Cell,
			PCI:      c.cfg.PCI,
			TTI:      work.TTI,
			Alloc:    a,
			REs:      res,
			N0:       math.Pow(10, -a.SNRdB/10) * noiseEnhancement,
			Deadline: deadline,
			Enqueued: now,
			OnDone:   onDone,
		}
		// At the shed-HARQ rung retransmissions decode fresh — no buffer is
		// attached, so no LLR accumulation, no busy-flag handoff, and no
		// soft-buffer memory traffic for this cell until the level drops.
		if !lvl.ShedsHARQ() {
			if sb, st := c.harq.prepareOwned(a, work.TTI); sb != nil {
				t.Soft = sb
				t.softState = st
			}
		}
		if c.tel != nil {
			c.tel.tasks.Inc(c.tel.shard)
			if a.RV != 0 {
				c.tel.harqRetx.Inc(c.tel.shard)
				c.pool.tel.harqRetx.Inc(c.pool.tel.driverShard)
			}
		}
		if err := c.pool.Submit(t); err != nil {
			return err
		}
	}
	return nil
}

// equalizeSubframe estimates the channel from the two pilot rows and
// divides every data row by the estimate, returning the mean noise
// enhancement factor to scale the demodulators' noise power.
func (c *CellProcessor) equalizeSubframe(tti frame.TTI) (float64, error) {
	sc := c.grid.Subcarriers()
	if len(c.estBuf) != sc {
		c.estBuf = make([]complex128, sc)
		c.estRow = make([]complex128, sc)
		c.pilotRef = make([]complex128, sc)
	}
	refs := frame.ReferenceSymbolIndices()
	for i := range c.estBuf {
		c.estBuf[i] = 0
	}
	for _, l := range refs {
		row, err := c.grid.Symbol(l)
		if err != nil {
			return 0, err
		}
		frame.Pilots(c.pilotRef, c.cfg.PCI, tti, l)
		if err := phy.EstimateLS(c.estRow, row, c.pilotRef); err != nil {
			return 0, err
		}
		for k := range c.estBuf {
			c.estBuf[k] += c.estRow[k]
		}
	}
	inv := complex(1/float64(len(refs)), 0)
	for k := range c.estBuf {
		c.estBuf[k] *= inv
	}
	var enh float64
	dataRows := 0
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		if frame.IsReferenceSymbol(l) {
			continue
		}
		row, err := c.grid.Symbol(l)
		if err != nil {
			return 0, err
		}
		e, err := phy.Equalize(row, c.estBuf)
		if err != nil {
			return 0, err
		}
		enh += e
		dataRows++
	}
	return enh / float64(dataRows), nil
}
