package dataplane

import (
	"fmt"
	"math"
	"time"

	"pran/internal/phy"
)

// CalibrateDeadlineScale measures how long this host takes to decode a
// fully loaded subframe at the given configuration and returns the
// Config.DeadlineScale at which that decode consumes roughly 60% of the
// scaled HARQ budget — the same compute-to-deadline ratio the paper's
// optimized C stack had against the real 3 ms budget. Experiments that use
// the measured data plane call this once at startup so results are
// comparable across hosts. The measurement runs a serial decode; use
// CalibrateDeadlineScaleWorkers when the pool enables Config.DecodeWorkers
// so the budget reflects the parallel service time.
func CalibrateDeadlineScale(bw phy.Bandwidth, mcs phy.MCS) (float64, error) {
	return CalibrateDeadlineScaleWorkers(bw, mcs, 1)
}

// CalibrateDeadlineScaleWorkers is CalibrateDeadlineScale measured with the
// given intra-task decode parallelism, matching a pool configured with
// DecodeWorkers=workers. On a multi-core host the returned scale shrinks
// roughly with min(workers, code blocks) because the turbo stage — the
// dominant cost — parallelizes across code blocks.
func CalibrateDeadlineScaleWorkers(bw phy.Bandwidth, mcs phy.MCS, workers int) (float64, error) {
	proc, err := phy.NewTransportProcessorWorkers(mcs, bw.PRB(), workers)
	if err != nil {
		return 0, err
	}
	defer proc.Close()
	payload := make([]byte, proc.TransportBlockSize())
	for i := range payload {
		payload[i] = byte(i % 2)
	}
	snr := mcs.OperatingSNR() + 2
	syms, err := proc.Encode(payload, 1, 1, 0, 0)
	if err != nil {
		return 0, err
	}
	rx := make([]complex128, len(syms))
	copy(rx, syms)
	ch := phy.NewAWGNChannel(snr, 4242)
	ch.Apply(rx)
	// Warm up once, then time a few decodes.
	if _, err := proc.Decode(rx, ch.N0(), 1, 1, 0, 0, nil); err != nil {
		return 0, fmt.Errorf("dataplane: calibration decode failed: %w", err)
	}
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := proc.Decode(rx, ch.N0(), 1, 1, 0, 0, nil); err != nil {
			return 0, fmt.Errorf("dataplane: calibration decode failed: %w", err)
		}
	}
	per := time.Since(start) / reps
	scale := float64(per) / (0.6 * float64(HARQBudget))
	return math.Max(scale, 1), nil
}
