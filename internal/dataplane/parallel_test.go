package dataplane

import (
	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
)

func TestEndToEndDecodeWorkers(t *testing.T) {
	// The full ingest path with intra-task parallelism: payload recovery
	// must be indistinguishable from the serial pool. endToEnd verifies the
	// decoded bits against the transmitted ground truth.
	pool := testPool(t, Config{Workers: 2, DecodeWorkers: 4, Policy: EDF, DeadlineScale: 1000})
	work := frame.SubframeWork{
		Cell: 1, TTI: 42,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 12, SNRdB: phy.MCS(12).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 2 {
		t.Fatalf("%d tasks done", len(done))
	}
	for _, tk := range done {
		if tk.Err != nil {
			t.Fatalf("rnti %d: %v", tk.Alloc.RNTI, tk.Err)
		}
		if tk.TurboIterations < 1 {
			t.Fatal("iterations not recorded")
		}
	}
}

func TestDecodeWorkersManySubframes(t *testing.T) {
	// Race-detector target for the pool composition: several pool workers,
	// each fanning code blocks across helpers, decoding a stream of
	// subframes concurrently.
	pool := testPool(t, Config{Workers: 3, DecodeWorkers: 3, Policy: EDF, DeadlineScale: 1000})
	subframes := 6
	if testing.Short() {
		subframes = 2
	}
	for s := 0; s < subframes; s++ {
		work := frame.SubframeWork{
			Cell: 1, TTI: frame.TTI(s),
			Allocations: []frame.Allocation{
				{RNTI: 100, FirstPRB: 0, NumPRB: 4, MCS: 16, SNRdB: phy.MCS(16).OperatingSNR() + 4},
				{RNTI: 101, FirstPRB: 4, NumPRB: 2, MCS: 6, SNRdB: phy.MCS(6).OperatingSNR() + 4},
			},
		}
		done := endToEnd(t, pool, work)
		for _, tk := range done {
			if tk.Err != nil {
				t.Fatalf("subframe %d rnti %d: %v", s, tk.Alloc.RNTI, tk.Err)
			}
		}
	}
}

func TestDecodeWorkersNaiveAllocCloses(t *testing.T) {
	// The GC-pressure ablation builds a fresh parallel processor per task;
	// its resident helpers must be released per task, not leaked. (The race
	// build would also flag use-after-close here.)
	pool := testPool(t, Config{Workers: 1, DecodeWorkers: 2, Policy: EDF, DeadlineScale: 1000, NaiveAlloc: true})
	work := frame.SubframeWork{
		Cell: 1, TTI: 9,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 4, MCS: 10, SNRdB: phy.MCS(10).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 1 || done[0].Err != nil {
		t.Fatalf("naive parallel decode failed: %+v", done)
	}
}

func TestConfigDecodeWorkersValidation(t *testing.T) {
	if err := (Config{Workers: 1, DeadlineScale: 1, DecodeWorkers: -1}).Validate(); err == nil {
		t.Fatal("negative DecodeWorkers accepted")
	}
	if err := (Config{Workers: 1, DeadlineScale: 1, DecodeWorkers: 0}).Validate(); err != nil {
		t.Fatalf("zero DecodeWorkers (= serial) rejected: %v", err)
	}
	if got := (Config{DecodeWorkers: 0}).decodeWorkers(); got != 1 {
		t.Fatalf("normalized decode workers = %d, want 1", got)
	}
}

func TestCalibrateDeadlineScaleWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("measured calibration")
	}
	s, err := CalibrateDeadlineScaleWorkers(phy.BW1_4MHz, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 {
		t.Fatalf("scale %v < 1", s)
	}
}
