package dataplane

import (
	"fmt"
	"time"

	"pran/internal/frame"
	"pran/internal/phy"
)

// Downlink path: the pool also *produces* subframes — encoding transport
// blocks, mapping them onto the cell's resource grid, and OFDM-modulating
// the grid into the time-domain I/Q the fronthaul ships to the RRH. The
// deadline here is the transmission instant: a subframe scheduled for TTI t
// must be fully synthesized before t's start, or the RRH transmits silence
// (an "empty subframe" — lost capacity rather than lost data, since the MAC
// reschedules).
//
// Encoding costs roughly a third of decoding (no iteration), so PRAN's
// provisioning is receive-dominated; the downlink path exists to make the
// data plane complete and to let experiments account total cell cost.

// DownlinkTask is one UE allocation's encode work item.
type DownlinkTask struct {
	// Cell, PCI and TTI identify the subframe under construction.
	Cell frame.CellID
	PCI  uint16
	TTI  frame.TTI
	// Alloc is the UE allocation to encode.
	Alloc frame.Allocation
	// Payload is the transport block (one bit per byte, TBS bits).
	Payload []byte

	// Symbols receives the modulated resource elements on success.
	Symbols []complex128
	// Err is the encode error, if any.
	Err error
	// Elapsed is the processing time.
	Elapsed time.Duration
}

// DownlinkProcessor synthesizes one cell's downlink subframes. It is the
// transmit-side sibling of CellProcessor: callers submit the subframe's
// allocations and payloads, the processor encodes each through the real
// transmit chain, maps them onto the grid, and OFDM-modulates the result.
// Not safe for concurrent use; one per cell.
type DownlinkProcessor struct {
	cfg     frame.CellConfig
	ofdm    *phy.OFDMModulator
	grid    *frame.Grid
	procs   map[procKey]*phy.TransportProcessor
	samples []complex128
	// EncodeTime accumulates transmit-chain time for cost accounting.
	EncodeTime time.Duration
}

// NewDownlinkProcessor builds the transmit path for one cell.
func NewDownlinkProcessor(cfg frame.CellConfig) (*DownlinkProcessor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ofdm, err := phy.NewOFDMModulator(cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	grid, err := frame.NewGrid(cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	return &DownlinkProcessor{
		cfg:     cfg,
		ofdm:    ofdm,
		grid:    grid,
		procs:   make(map[procKey]*phy.TransportProcessor),
		samples: make([]complex128, ofdm.FFTSize()*phy.SymbolsPerSubframe),
	}, nil
}

// Config returns the cell configuration.
func (d *DownlinkProcessor) Config() frame.CellConfig { return d.cfg }

func (d *DownlinkProcessor) processor(mcs phy.MCS, nprb int) (*phy.TransportProcessor, error) {
	key := procKey{mcs: mcs, nprb: nprb}
	if p, ok := d.procs[key]; ok {
		return p, nil
	}
	p, err := phy.NewTransportProcessor(mcs, nprb)
	if err != nil {
		return nil, err
	}
	d.procs[key] = p
	return p, nil
}

// BuildSubframe encodes every allocation's payload, maps the results onto
// the grid, and returns the subframe's time-domain samples (reused across
// calls). payloads[i] must hold allocation i's TBS bits.
func (d *DownlinkProcessor) BuildSubframe(work frame.SubframeWork, payloads [][]byte) ([]complex128, error) {
	if err := work.Validate(d.cfg.Bandwidth); err != nil {
		return nil, err
	}
	if len(payloads) != len(work.Allocations) {
		return nil, fmt.Errorf("dataplane: %d payloads for %d allocations: %w",
			len(payloads), len(work.Allocations), phy.ErrBadParameter)
	}
	start := time.Now()
	d.grid.Reset()
	for i, a := range work.Allocations {
		proc, err := d.processor(a.MCS, a.NumPRB)
		if err != nil {
			return nil, err
		}
		syms, err := proc.Encode(payloads[i], uint16(a.RNTI), d.cfg.PCI, work.TTI.Subframe(), int(a.RV))
		if err != nil {
			return nil, fmt.Errorf("dataplane: DL encode alloc %d: %w", i, err)
		}
		if err := d.grid.Place(a, syms); err != nil {
			return nil, err
		}
	}
	fftSize := d.ofdm.FFTSize()
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		row, err := d.grid.Symbol(l)
		if err != nil {
			return nil, err
		}
		if err := d.ofdm.Symbol(d.samples[l*fftSize:(l+1)*fftSize], row); err != nil {
			return nil, err
		}
	}
	d.EncodeTime += time.Since(start)
	return d.samples, nil
}

// EncodeOnPool submits per-UE encode tasks to a worker pool instead of
// encoding inline, for cells whose downlink load should share the pool's
// EDF scheduling with uplink work. Each DownlinkTask is wrapped in a
// regular Task whose deadline is the subframe's transmission instant;
// onDone fires per allocation with the encoded symbols.
//
// The uplink Task type carries the work; its Alloc.Dir distinguishes the
// direction for accounting.
func EncodeOnPool(pool *Pool, cell frame.CellConfig, work frame.SubframeWork, payloads [][]byte, txDeadline time.Time, onDone func(*DownlinkTask)) error {
	if err := work.Validate(cell.Bandwidth); err != nil {
		return err
	}
	if len(payloads) != len(work.Allocations) {
		return fmt.Errorf("dataplane: %d payloads for %d allocations: %w",
			len(payloads), len(work.Allocations), phy.ErrBadParameter)
	}
	now := time.Now()
	for i, a := range work.Allocations {
		a := a
		a.Dir = phy.Downlink
		dl := &DownlinkTask{Cell: work.Cell, PCI: cell.PCI, TTI: work.TTI, Alloc: a, Payload: payloads[i]}
		t := &Task{
			Cell:     work.Cell,
			PCI:      cell.PCI,
			TTI:      work.TTI,
			Alloc:    a,
			Enqueued: now,
			Deadline: txDeadline,
			runInstead: func(w *worker, t *Task) {
				start := time.Now()
				// Encode doesn't decode, so the degradation ladder's kernel
				// override is irrelevant — use the pool's configured kernel.
				proc, err := w.processor(dl.Alloc.MCS, dl.Alloc.NumPRB, 0, w.pool.cfg.DecodeKernel)
				if err != nil {
					dl.Err = err
					return
				}
				if w.procs == nil {
					defer proc.Close()
				}
				syms, err := proc.Encode(dl.Payload, uint16(dl.Alloc.RNTI), dl.PCI, dl.TTI.Subframe(), int(dl.Alloc.RV))
				if err != nil {
					dl.Err = err
					return
				}
				// Copy out: the processor's buffer is reused.
				dl.Symbols = append(dl.Symbols[:0], syms...)
				dl.Elapsed = time.Since(start)
			},
			OnDone: func(t *Task) {
				if dl.Err == nil && t.Err != nil {
					dl.Err = t.Err
				}
				if onDone != nil {
					onDone(dl)
				}
			},
		}
		if err := pool.Submit(t); err != nil {
			return err
		}
	}
	return nil
}
