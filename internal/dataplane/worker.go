package dataplane

import (
	"time"

	"pran/internal/cluster"
	"pran/internal/phy"
)

// worker owns per-configuration DSP state so the steady-state decode path
// never allocates. One worker maps to one dedicated core in the PRAN model;
// with Config.DecodeWorkers > 1 each cached processor (or, under cross-task
// batching, the worker's joint decoder) additionally keeps DecodeWorkers-1
// resident turbo-decode helpers, so a busy worker occupies up to
// DecodeWorkers cores during the turbo stage. All processor state is
// private to this worker's goroutine — only the parallel decoder's internal
// fan-out (documented on phy.ParallelDecoder) crosses goroutines.
type worker struct {
	pool *Pool
	id   int
	// procs caches transport processors keyed by (MCS, NumPRB, kernel);
	// nil when the pool runs in NaiveAlloc mode. The kernel component
	// exists for the degradation ladder: a level that forces the int16
	// kernel decodes through a separate cached processor rather than
	// mutating the full-fidelity one. With cross-task batching each key
	// holds one serial processor per potential batch slot (a joint decode
	// needs a distinct processor per transport block); otherwise the slice
	// has exactly one fully-configured processor.
	procs map[procKey][]*phy.TransportProcessor
	// joints caches joint decoders keyed by (turbo block size K, kernel),
	// created only when Config.BatchTasks ≥ 2. The joint decoder carries
	// the worker's decode parallelism and lockstep batch width; the
	// per-slot processors above are serial.
	joints map[jointKey]*phy.JointDecoder

	// Claim/dispatch scratch, reused across groups.
	group []*Task
	live  []*Task
	reqs  []phy.DecodeRequest
}

type procKey struct {
	mcs    phy.MCS
	nprb   int
	kernel phy.DecodeKernel
}

type jointKey struct {
	k      int
	kernel phy.DecodeKernel
}

func newWorker(p *Pool, id int) *worker {
	w := &worker{pool: p, id: id}
	if !p.cfg.NaiveAlloc {
		w.procs = make(map[procKey][]*phy.TransportProcessor)
	}
	if p.cfg.batchTasks() > 1 {
		w.joints = make(map[jointKey]*phy.JointDecoder)
	}
	return w
}

// batching reports whether this worker decodes uplink tasks through its
// joint decoder (cross-task batching enabled).
func (w *worker) batching() bool { return w.joints != nil }

// kernelFor returns the decode kernel a task at degradation level lvl runs:
// the pool's configured kernel, overridden to int16 at the ladder rungs
// that force it.
func (w *worker) kernelFor(lvl cluster.DegradationLevel) phy.DecodeKernel {
	if lvl.ForcesInt16() {
		return phy.KernelInt16
	}
	return w.pool.cfg.DecodeKernel
}

// procOptions returns the construction options for this worker's
// processors running the given kernel. Under cross-task batching the
// processors are serial — the joint decoder supplies the worker/batch
// fan-out.
func (w *worker) procOptions(kern phy.DecodeKernel) phy.ProcOptions {
	cfg := w.pool.cfg
	opts := phy.ProcOptions{Kernel: kern, FrontEnd: cfg.FrontEnd}
	if !w.batching() {
		opts.Workers = cfg.decodeWorkers()
		opts.Batch = cfg.decodeBatch()
	}
	return opts
}

// processor returns slot n's transport processor for the configuration and
// kernel, cached per worker unless the GC-pressure ablation is on. In
// NaiveAlloc mode the caller owns the returned processor and must Close it
// after use (the cached ones are closed when the worker exits). The solo
// decode and downlink-encode paths use slot 0; joint decodes use one slot
// per transport block in the batch.
func (w *worker) processor(mcs phy.MCS, nprb, n int, kern phy.DecodeKernel) (*phy.TransportProcessor, error) {
	opts := w.procOptions(kern)
	if w.procs == nil {
		return phy.NewTransportProcessorOpts(mcs, nprb, opts)
	}
	key := procKey{mcs: mcs, nprb: nprb, kernel: kern}
	s := w.procs[key]
	for len(s) <= n {
		p, err := phy.NewTransportProcessorOpts(mcs, nprb, opts)
		if err != nil {
			return nil, err
		}
		s = append(s, p)
		w.procs[key] = s
	}
	return s[n], nil
}

// joint returns the worker's joint decoder for turbo block size k and
// decode kernel, creating it on first use.
func (w *worker) joint(k int, kern phy.DecodeKernel) (*phy.JointDecoder, error) {
	key := jointKey{k: k, kernel: kern}
	if jd, ok := w.joints[key]; ok {
		return jd, nil
	}
	cfg := w.pool.cfg
	jd, err := phy.NewJointDecoder(k, phy.ParallelOptions{
		Workers: cfg.decodeWorkers(), Kernel: kern, Batch: cfg.decodeBatch(),
	})
	if err != nil {
		return nil, err
	}
	w.joints[key] = jd
	return jd, nil
}

func (w *worker) run() {
	defer w.pool.wg.Done()
	defer func() {
		// Release the resident decode helpers of cached parallel processors
		// and joint decoders.
		for _, s := range w.procs {
			for _, p := range s {
				p.Close()
			}
		}
		for _, jd := range w.joints {
			jd.Close()
		}
	}()
	for {
		group := w.pool.nextGroup(w.group)
		if group == nil {
			return
		}
		w.group = group[:0] // retain the (possibly grown) backing array
		if w.batching() && group[0].joinable() {
			w.executeJoint(group)
		} else {
			// Non-joinable tasks (custom work functions) always claim alone.
			w.execute(group[0])
		}
		for _, t := range group {
			w.pool.finish(t, w.id)
		}
	}
}

// admit runs the per-task admission steps (deadline abandon, fault hook)
// and reports whether the task should be processed.
func (w *worker) admit(t *Task, now time.Time) bool {
	if w.pool.cfg.AbandonLate && now.After(t.Deadline) {
		t.Err = ErrAbandoned
		t.Finished = now
		return false
	}
	t.Started = now
	if hook := w.pool.cfg.FaultHook; hook != nil {
		if err := hook(w.id); err != nil {
			t.Err = err
			t.Finished = time.Now()
			return false
		}
	}
	return true
}

// recordStages feeds the per-stage histograms from a processor's most
// recent decode.
func (w *worker) recordStages(tm phy.StageTimings) {
	if tel := w.pool.tel; tel != nil {
		// Under the fused+parallel overlap (and under joint decoding)
		// per-block front-ends fold into TurboDecode (see phy.StageTimings),
		// so the front-end histogram records 0 there rather than a
		// fabricated split.
		tel.frontEnd.ObserveDuration(w.id, tm.Demodulate+tm.Descramble+tm.Dematch+tm.FrontEnd)
		tel.turbo.ObserveDuration(w.id, tm.TurboDecode)
		tel.crc.ObserveDuration(w.id, tm.CRCCheck)
	}
}

// execute runs the uplink decode for one task.
func (w *worker) execute(t *Task) {
	if !w.admit(t, time.Now()) {
		return
	}
	if t.runInstead != nil {
		t.runInstead(w, t)
		t.Finished = time.Now()
		return
	}
	proc, err := w.processor(t.Alloc.MCS, t.Alloc.NumPRB, 0, w.kernelFor(t.Degrade))
	if err != nil {
		t.Err = err
		t.Finished = time.Now()
		return
	}
	if w.procs == nil {
		defer proc.Close()
	}
	// IterCap is 0 at level 0, which SetMaxIterations maps back to the
	// default budget — a cached processor left capped by a degraded task
	// is restored before the next full-fidelity decode.
	proc.SetMaxIterations(t.Degrade.IterCap())
	payload, err := proc.Decode(t.REs, t.N0, uint16(t.Alloc.RNTI), t.PCI, t.TTI.Subframe(), int(t.Alloc.RV), t.Soft)
	t.Payload = payload
	t.Err = err
	t.TurboIterations = proc.Timings.TurboIterations
	t.Finished = time.Now()
	w.recordStages(proc.Timings)
}

// executeJoint decodes a claimed group of same-shape uplink tasks in one
// joint fan-out, so lockstep batches span the group's transport blocks.
// Group width 1 still routes through the joint decoder — that is where this
// worker's decode parallelism and lockstep width live.
func (w *worker) executeJoint(group []*Task) {
	now := time.Now()
	if tel := w.pool.tel; tel != nil {
		tel.batchWidth.Observe(w.id, float64(len(group)))
		if len(group) >= w.pool.cfg.batchTasks() {
			tel.batchFull.Inc(w.id)
		} else {
			tel.batchRagged.Inc(w.id)
		}
	}
	live, reqs := w.live[:0], w.reqs[:0]
	defer func() {
		for i := range reqs {
			reqs[i] = phy.DecodeRequest{}
		}
		w.live, w.reqs = live[:0], reqs[:0]
	}()
	for _, t := range group {
		if w.admit(t, now) {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}
	failAll := func(err error) {
		fin := time.Now()
		for _, t := range live {
			t.Err = err
			t.Finished = fin
		}
	}
	// The group is shape-uniform (sameShape includes the degradation
	// level), so one kernel choice and one iteration budget cover it.
	kern := w.kernelFor(live[0].Degrade)
	for n, t := range live {
		proc, err := w.processor(t.Alloc.MCS, t.Alloc.NumPRB, n, kern)
		if err != nil {
			failAll(err)
			return
		}
		reqs = append(reqs, phy.DecodeRequest{
			P: proc, RX: t.REs, N0: t.N0,
			RNTI: uint16(t.Alloc.RNTI), CellID: t.PCI, Subframe: t.TTI.Subframe(),
			RV: int(t.Alloc.RV), SB: t.Soft,
		})
	}
	jd, err := w.joint(reqs[0].P.CodeBlockSize(), kern)
	if err != nil {
		failAll(err)
		return
	}
	jd.SetMaxIterations(live[0].Degrade.IterCap())
	// A call-level DecodeJoint error lands in every request's Err field,
	// so the per-task copy below propagates both outcomes.
	_ = jd.DecodeJoint(reqs)
	fin := time.Now()
	for n, t := range live {
		r := &reqs[n]
		t.Payload, t.Err, t.TurboIterations = r.Payload, r.Err, r.Iters
		t.Finished = fin
		w.recordStages(r.P.Timings)
	}
	if w.procs == nil {
		for i := range reqs {
			reqs[i].P.Close()
		}
	}
}
