package dataplane

import (
	"time"

	"pran/internal/phy"
)

// worker owns per-configuration DSP state so the steady-state decode path
// never allocates. One worker maps to one dedicated core in the PRAN model.
type worker struct {
	pool *Pool
	id   int
	// procs caches transport processors keyed by (MCS, NumPRB); nil when
	// the pool runs in NaiveAlloc mode.
	procs map[procKey]*phy.TransportProcessor
}

type procKey struct {
	mcs  phy.MCS
	nprb int
}

func newWorker(p *Pool, id int) *worker {
	w := &worker{pool: p, id: id}
	if !p.cfg.NaiveAlloc {
		w.procs = make(map[procKey]*phy.TransportProcessor)
	}
	return w
}

// processor returns a transport processor for the configuration, cached per
// worker unless the GC-pressure ablation is on.
func (w *worker) processor(mcs phy.MCS, nprb int) (*phy.TransportProcessor, error) {
	if w.procs == nil {
		return phy.NewTransportProcessor(mcs, nprb)
	}
	key := procKey{mcs, nprb}
	if p, ok := w.procs[key]; ok {
		return p, nil
	}
	p, err := phy.NewTransportProcessor(mcs, nprb)
	if err != nil {
		return nil, err
	}
	w.procs[key] = p
	return p, nil
}

func (w *worker) run() {
	defer w.pool.wg.Done()
	for {
		t := w.pool.next()
		if t == nil {
			return
		}
		w.execute(t)
		w.pool.finish(t)
	}
}

// execute runs the uplink decode for one task.
func (w *worker) execute(t *Task) {
	now := time.Now()
	if w.pool.cfg.AbandonLate && now.After(t.Deadline) {
		t.Err = ErrAbandoned
		t.Finished = now
		return
	}
	t.Started = now
	if t.runInstead != nil {
		t.runInstead(w, t)
		t.Finished = time.Now()
		return
	}
	proc, err := w.processor(t.Alloc.MCS, t.Alloc.NumPRB)
	if err != nil {
		t.Err = err
		t.Finished = time.Now()
		return
	}
	payload, err := proc.Decode(t.REs, t.N0, uint16(t.Alloc.RNTI), t.PCI, t.TTI.Subframe(), int(t.Alloc.RV), t.Soft)
	t.Payload = payload
	t.Err = err
	t.TurboIterations = proc.Timings.TurboIterations
	t.Finished = time.Now()
}
