package dataplane

import (
	"time"

	"pran/internal/phy"
)

// worker owns per-configuration DSP state so the steady-state decode path
// never allocates. One worker maps to one dedicated core in the PRAN model;
// with Config.DecodeWorkers > 1 each cached processor additionally keeps
// DecodeWorkers-1 resident turbo-decode helpers, so a busy worker occupies
// up to DecodeWorkers cores during the turbo stage. All processor state is
// private to this worker's goroutine — only the parallel decoder's internal
// fan-out (documented on phy.ParallelDecoder) crosses goroutines.
type worker struct {
	pool *Pool
	id   int
	// procs caches transport processors keyed by (MCS, NumPRB); nil when
	// the pool runs in NaiveAlloc mode.
	procs map[procKey]*phy.TransportProcessor
}

type procKey struct {
	mcs  phy.MCS
	nprb int
}

func newWorker(p *Pool, id int) *worker {
	w := &worker{pool: p, id: id}
	if !p.cfg.NaiveAlloc {
		w.procs = make(map[procKey]*phy.TransportProcessor)
	}
	return w
}

// processor returns a transport processor for the configuration, cached per
// worker unless the GC-pressure ablation is on. In NaiveAlloc mode the
// caller owns the returned processor and must Close it after use (the
// cached ones are closed when the worker exits).
func (w *worker) processor(mcs phy.MCS, nprb int) (*phy.TransportProcessor, error) {
	opts := phy.ProcOptions{
		Workers:  w.pool.cfg.decodeWorkers(),
		Kernel:   w.pool.cfg.DecodeKernel,
		FrontEnd: w.pool.cfg.FrontEnd,
	}
	if w.procs == nil {
		return phy.NewTransportProcessorOpts(mcs, nprb, opts)
	}
	key := procKey{mcs, nprb}
	if p, ok := w.procs[key]; ok {
		return p, nil
	}
	p, err := phy.NewTransportProcessorOpts(mcs, nprb, opts)
	if err != nil {
		return nil, err
	}
	w.procs[key] = p
	return p, nil
}

func (w *worker) run() {
	defer w.pool.wg.Done()
	defer func() {
		// Release the resident decode helpers of cached parallel processors.
		for _, p := range w.procs {
			p.Close()
		}
	}()
	for {
		t := w.pool.next()
		if t == nil {
			return
		}
		w.execute(t)
		w.pool.finish(t, w.id)
	}
}

// execute runs the uplink decode for one task.
func (w *worker) execute(t *Task) {
	now := time.Now()
	if w.pool.cfg.AbandonLate && now.After(t.Deadline) {
		t.Err = ErrAbandoned
		t.Finished = now
		return
	}
	t.Started = now
	if hook := w.pool.cfg.FaultHook; hook != nil {
		if err := hook(w.id); err != nil {
			t.Err = err
			t.Finished = time.Now()
			return
		}
	}
	if t.runInstead != nil {
		t.runInstead(w, t)
		t.Finished = time.Now()
		return
	}
	proc, err := w.processor(t.Alloc.MCS, t.Alloc.NumPRB)
	if err != nil {
		t.Err = err
		t.Finished = time.Now()
		return
	}
	if w.procs == nil {
		defer proc.Close()
	}
	payload, err := proc.Decode(t.REs, t.N0, uint16(t.Alloc.RNTI), t.PCI, t.TTI.Subframe(), int(t.Alloc.RV), t.Soft)
	t.Payload = payload
	t.Err = err
	t.TurboIterations = proc.Timings.TurboIterations
	t.Finished = time.Now()
	if tel := w.pool.tel; tel != nil {
		// Under the fused+parallel overlap per-block front-ends fold into
		// TurboDecode (see phy.StageTimings), so the front-end histogram
		// records 0 there rather than a fabricated split.
		tm := proc.Timings
		tel.frontEnd.ObserveDuration(w.id, tm.Demodulate+tm.Descramble+tm.Dematch+tm.FrontEnd)
		tel.turbo.ObserveDuration(w.id, tm.TurboDecode)
		tel.crc.ObserveDuration(w.id, tm.CRCCheck)
	}
}
