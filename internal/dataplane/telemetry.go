package dataplane

import (
	"fmt"

	"pran/internal/frame"
	"pran/internal/telemetry"
)

// Telemetry metric names exported by the pool. Counters shard per worker
// (shard i == worker i; the submit side records on shard Workers), so the
// snapshot's per-shard breakdown doubles as the per-worker view.
const (
	// MetricTasksSubmitted counts tasks accepted by Submit.
	MetricTasksSubmitted = "pool.tasks_submitted"
	// MetricTasksCompleted counts tasks processed to completion (including
	// CRC failures — the decode ran; the payload was bad).
	MetricTasksCompleted = "pool.tasks_completed"
	// MetricTasksAbandoned counts tasks dropped unprocessed past deadline.
	MetricTasksAbandoned = "pool.tasks_abandoned"
	// MetricCRCFailures counts completed tasks whose transport CRC failed.
	MetricCRCFailures = "pool.crc_failures"
	// MetricDeadlineMisses counts tasks finishing (or abandoned) after
	// their deadline.
	MetricDeadlineMisses = "pool.deadline_misses"
	// MetricHARQRetransmits counts ingested allocations with RV != 0, i.e.
	// HARQ retransmissions entering the pool.
	MetricHARQRetransmits = "pool.harq_retransmits"
	// MetricWorkerBusyNanos accumulates per-worker processing time in
	// nanoseconds; shard i over wall time is worker i's utilization.
	MetricWorkerBusyNanos = "pool.worker_busy_ns"
	// MetricQueueDepth gauges the number of tasks waiting in the queue.
	MetricQueueDepth = "pool.queue_depth"
	// MetricLatency is the enqueue-to-finish latency histogram (seconds).
	MetricLatency = "pool.latency_s"
	// MetricProcTime is the pure processing-time histogram (seconds).
	MetricProcTime = "pool.proc_time_s"
	// MetricStageFrontEnd is the decode front-end stage histogram (seconds):
	// demodulation + descrambling + de-rate-matching, fused or staged.
	MetricStageFrontEnd = "pool.stage_front_end_s"
	// MetricStageTurbo is the turbo-decode stage histogram (seconds).
	MetricStageTurbo = "pool.stage_turbo_s"
	// MetricStageCRC is the desegment+CRC stage histogram (seconds).
	MetricStageCRC = "pool.stage_crc_s"
	// MetricBatchWidth is the cross-codeword batching width histogram: the
	// number of same-shape uplink tasks each joint dispatch claimed
	// (recorded only when Config.BatchTasks ≥ 2). Width 1 means a task
	// found no batch partners in the queue.
	MetricBatchWidth = "dataplane.batch_width"
	// MetricBatchFlushFull counts joint dispatches that claimed a full
	// BatchTasks-wide group.
	MetricBatchFlushFull = "dataplane.batch_flush_full"
	// MetricBatchFlushRagged counts joint dispatches that went out ragged —
	// fewer same-shape tasks were queued than the batch limit, so the
	// dispatch flushed early rather than hold tasks against their HARQ
	// deadline.
	MetricBatchFlushRagged = "dataplane.batch_flush_ragged"
	// MetricDegradeLevel gauges the headroom controller's current
	// pool-wide degradation-ladder target (0 = full service; see
	// cluster.DegradationLevel).
	MetricDegradeLevel = "dataplane.degradation_level"
	// MetricDegradeRaises counts the controller's level raises.
	MetricDegradeRaises = "dataplane.degrade_raises"
	// MetricDegradeLowers counts the controller's level lowers.
	MetricDegradeLowers = "dataplane.degrade_lowers"
)

// batchWidthMax is the batch-width histogram's upper bound; widths are
// small integers, so a coarse log-scale range keeps the buckets dense.
const batchWidthMax = 64

// CellMetricTasks returns the per-cell ingest counter name.
func CellMetricTasks(cell frame.CellID) string {
	return fmt.Sprintf("cell.%d.tasks", cell)
}

// CellMetricHARQRetransmits returns the per-cell retransmission counter name.
func CellMetricHARQRetransmits(cell frame.CellID) string {
	return fmt.Sprintf("cell.%d.harq_retransmits", cell)
}

// CellMetricDegradeLevel returns the per-cell degradation-level gauge name.
func CellMetricDegradeLevel(cell frame.CellID) string {
	return fmt.Sprintf("cell.%d.degradation_level", cell)
}

// poolTelemetry carries the pool's pre-resolved metric handles. Handles are
// bound once in NewPool so the record paths (Submit, worker execute/finish)
// never touch the registry's maps or mutex — recording is a handful of
// atomic RMWs and allocates nothing.
type poolTelemetry struct {
	reg *telemetry.Registry
	// driverShard is the shard index for records made off the worker
	// goroutines (Submit, cell ingest): one past the last worker ID.
	driverShard int

	submitted  *telemetry.Counter
	completed  *telemetry.Counter
	abandoned  *telemetry.Counter
	crcFail    *telemetry.Counter
	misses     *telemetry.Counter
	harqRetx   *telemetry.Counter
	busyNanos  *telemetry.Counter
	queueDepth *telemetry.Gauge

	latency    *telemetry.Histogram
	procTime   *telemetry.Histogram
	frontEnd   *telemetry.Histogram
	turbo      *telemetry.Histogram
	crc        *telemetry.Histogram
	batchWidth *telemetry.Histogram

	batchFull   *telemetry.Counter
	batchRagged *telemetry.Counter
}

// newPoolTelemetry resolves the pool's metric handles against reg.
func newPoolTelemetry(reg *telemetry.Registry, workers int) *poolTelemetry {
	return &poolTelemetry{
		reg:         reg,
		driverShard: workers,
		submitted:   reg.Counter(MetricTasksSubmitted),
		completed:   reg.Counter(MetricTasksCompleted),
		abandoned:   reg.Counter(MetricTasksAbandoned),
		crcFail:     reg.Counter(MetricCRCFailures),
		misses:      reg.Counter(MetricDeadlineMisses),
		harqRetx:    reg.Counter(MetricHARQRetransmits),
		busyNanos:   reg.Counter(MetricWorkerBusyNanos),
		queueDepth:  reg.Gauge(MetricQueueDepth),
		latency:     reg.LatencyHistogram(MetricLatency),
		procTime:    reg.LatencyHistogram(MetricProcTime),
		frontEnd:    reg.LatencyHistogram(MetricStageFrontEnd),
		turbo:       reg.LatencyHistogram(MetricStageTurbo),
		crc:         reg.LatencyHistogram(MetricStageCRC),
		batchWidth:  reg.Histogram(MetricBatchWidth, 1, batchWidthMax, 32),
		batchFull:   reg.Counter(MetricBatchFlushFull),
		batchRagged: reg.Counter(MetricBatchFlushRagged),
	}
}

// cellTelemetry carries one cell processor's pre-resolved handles.
type cellTelemetry struct {
	tasks    *telemetry.Counter
	harqRetx *telemetry.Counter
	shard    int
}

// newCellTelemetry resolves the per-cell ingest counters. The ingest path
// runs on the driver goroutine, so records use the pool's driver shard.
func newCellTelemetry(pt *poolTelemetry, cell frame.CellID) *cellTelemetry {
	return &cellTelemetry{
		tasks:    pt.reg.Counter(CellMetricTasks(cell)),
		harqRetx: pt.reg.Counter(CellMetricHARQRetransmits(cell)),
		shard:    pt.driverShard,
	}
}
