package dataplane

import (
	"fmt"
	"math"
	"math/rand"

	"pran/internal/frame"
	"pran/internal/phy"
)

// RRHEmulator stands in for a cell site: given a subframe's scheduled
// allocations it synthesizes the uplink signal the fronthaul would deliver —
// encoding random (or caller-provided) transport blocks through the real
// transmit chain, impairing each UE's resource elements with AWGN at its
// allocation SNR, and OFDM-modulating the grid to time-domain I/Q.
//
// The emulator is this reproduction's substitute for radio hardware
// (DESIGN.md §2): everything downstream of it is the code whose performance
// PRAN's experiments measure. Not safe for concurrent use; use one per cell.
type RRHEmulator struct {
	cfg     frame.CellConfig
	ofdm    *phy.OFDMModulator
	grid    *frame.Grid
	procs   map[procKey]*phy.TransportProcessor
	rng     *rand.Rand
	chans   map[int]*phy.AWGNChannel // keyed by integer SNR decibel bucket
	samples []complex128
	scratch []complex128
	seed    int64

	// Fading, when non-nil, applies a frequency-selective channel response
	// to the whole subframe (pilots included) before per-UE noise; pair it
	// with CellProcessor.EstimateChannel on the receive side.
	Fading *phy.ChannelResponse
}

// NewRRHEmulator returns an emulator for the cell, deterministic per seed.
func NewRRHEmulator(cfg frame.CellConfig, seed int64) (*RRHEmulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ofdm, err := phy.NewOFDMModulator(cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	grid, err := frame.NewGrid(cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	return &RRHEmulator{
		cfg:     cfg,
		ofdm:    ofdm,
		grid:    grid,
		procs:   make(map[procKey]*phy.TransportProcessor),
		rng:     rand.New(rand.NewSource(seed)),
		chans:   make(map[int]*phy.AWGNChannel),
		samples: make([]complex128, ofdm.FFTSize()*phy.SymbolsPerSubframe),
		seed:    seed,
	}, nil
}

// Config returns the cell configuration.
func (r *RRHEmulator) Config() frame.CellConfig { return r.cfg }

func (r *RRHEmulator) processor(mcs phy.MCS, nprb int) (*phy.TransportProcessor, error) {
	key := procKey{mcs: mcs, nprb: nprb}
	if p, ok := r.procs[key]; ok {
		return p, nil
	}
	p, err := phy.NewTransportProcessor(mcs, nprb)
	if err != nil {
		return nil, err
	}
	r.procs[key] = p
	return p, nil
}

// channel returns a persistent AWGN channel for the (rounded) SNR so noise
// streams stay deterministic per cell.
func (r *RRHEmulator) channel(snrDB float64) *phy.AWGNChannel {
	key := int(math.Round(snrDB))
	if c, ok := r.chans[key]; ok {
		c.SetSNR(snrDB)
		return c
	}
	c := phy.NewAWGNChannel(snrDB, r.seed*1009+int64(key))
	r.chans[key] = c
	return c
}

// RandomPayloads draws fresh random transport blocks matching each
// allocation's TBS (one bit per byte).
func (r *RRHEmulator) RandomPayloads(work frame.SubframeWork) ([][]byte, error) {
	out := make([][]byte, len(work.Allocations))
	for i, a := range work.Allocations {
		tbs, err := a.TransportBlockSize()
		if err != nil {
			return nil, err
		}
		p := make([]byte, tbs)
		for j := range p {
			p[j] = byte(r.rng.Intn(2))
		}
		out[i] = p
	}
	return out, nil
}

// Emit synthesizes the received time-domain subframe for the scheduled
// work, transmitting payloads[i] for allocation i (use RandomPayloads for
// fresh data; reuse the same payloads with a bumped RV for HARQ
// retransmissions). The returned sample slice is reused across calls.
func (r *RRHEmulator) Emit(work frame.SubframeWork, payloads [][]byte) ([]complex128, error) {
	if err := work.Validate(r.cfg.Bandwidth); err != nil {
		return nil, err
	}
	if len(payloads) != len(work.Allocations) {
		return nil, fmt.Errorf("dataplane: %d payloads for %d allocations: %w", len(payloads), len(work.Allocations), phy.ErrBadParameter)
	}
	r.grid.Reset()
	// Clean transmit grid first: UE data plus the cell's pilot sequence.
	for i, a := range work.Allocations {
		proc, err := r.processor(a.MCS, a.NumPRB)
		if err != nil {
			return nil, err
		}
		syms, err := proc.Encode(payloads[i], uint16(a.RNTI), r.cfg.PCI, work.TTI.Subframe(), int(a.RV))
		if err != nil {
			return nil, fmt.Errorf("dataplane: encode alloc %d: %w", i, err)
		}
		if err := r.grid.Place(a, syms); err != nil {
			return nil, err
		}
	}
	r.grid.PlacePilots(r.cfg.PCI, work.TTI)

	// Frequency-selective channel over the whole subframe.
	if r.Fading != nil {
		for l := 0; l < phy.SymbolsPerSubframe; l++ {
			row, err := r.grid.Symbol(l)
			if err != nil {
				return nil, err
			}
			if err := r.Fading.Apply(row); err != nil {
				return nil, err
			}
		}
	}

	// Receiver noise: per-UE SNR on each allocation's REs, and noise at
	// the strongest UE's SNR on the pilot symbols (the eNB front end is
	// common; per-UE SNR differences come from path loss on the data).
	bestSNR := 20.0
	for i, a := range work.Allocations {
		if i == 0 || a.SNRdB > bestSNR {
			bestSNR = a.SNRdB
		}
		n := a.NumPRB * phy.DataREsPerPRB
		if cap(r.scratch) < n {
			r.scratch = make([]complex128, n)
		}
		region := r.scratch[:n]
		if err := r.grid.Extract(region, a); err != nil {
			return nil, err
		}
		r.channel(a.SNRdB).Apply(region)
		if err := r.grid.Place(a, region); err != nil {
			return nil, err
		}
	}
	for _, l := range frame.ReferenceSymbolIndices() {
		row, err := r.grid.Symbol(l)
		if err != nil {
			return nil, err
		}
		r.channel(bestSNR).Apply(row)
	}

	// OFDM-modulate the grid to time domain, symbol by symbol.
	fftSize := r.ofdm.FFTSize()
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		row, err := r.grid.Symbol(l)
		if err != nil {
			return nil, err
		}
		if err := r.ofdm.Symbol(r.samples[l*fftSize:(l+1)*fftSize], row); err != nil {
			return nil, err
		}
	}
	return r.samples, nil
}
