package dataplane

import (
	"bytes"
	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
	"pran/internal/telemetry"
)

// TestPoolTelemetryEndToEnd drives real subframes through the pool with an
// explicit registry and checks that the runtime metrics agree with the
// pool's own Stats accounting.
func TestPoolTelemetryEndToEnd(t *testing.T) {
	reg := telemetry.New(4)
	pool := testPool(t, Config{Workers: 2, Policy: EDF, DeadlineScale: 1000, Telemetry: reg})
	if pool.Telemetry() != reg {
		t.Fatal("pool did not adopt the explicit registry")
	}
	work := frame.SubframeWork{
		Cell: 1, TTI: 7,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 12, SNRdB: phy.MCS(12).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 2 {
		t.Fatalf("%d tasks done", len(done))
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricTasksSubmitted); got != 2 {
		t.Fatalf("submitted %d", got)
	}
	if got := snap.Counter(MetricTasksCompleted); got != 2 {
		t.Fatalf("completed %d", got)
	}
	if snap.Counter(MetricTasksAbandoned) != 0 || snap.Counter(MetricCRCFailures) != 0 {
		t.Fatalf("spurious failures: %s", snap)
	}
	if got := snap.Counter(CellMetricTasks(1)); got != 2 {
		t.Fatalf("per-cell tasks %d", got)
	}
	for _, name := range []string{MetricLatency, MetricProcTime, MetricStageFrontEnd, MetricStageTurbo, MetricStageCRC} {
		hs, ok := snap.Histogram(name)
		if !ok || hs.State.Count != 2 {
			t.Fatalf("histogram %s: ok=%v state=%+v", name, ok, hs.State)
		}
	}
	// Stage decompositions recorded real time: turbo dominates the decode.
	turbo, _ := snap.Histogram(MetricStageTurbo)
	if turbo.State.Sum <= 0 {
		t.Fatal("turbo stage recorded no time")
	}
	if got := snap.Counter(MetricWorkerBusyNanos); got == 0 {
		t.Fatal("worker busy time not recorded")
	}
	if depth, ok := snap.Gauge(MetricQueueDepth); !ok || depth != 0 {
		t.Fatalf("queue depth %d after drain", depth)
	}
}

// TestPoolTelemetryHARQAndFailures checks the retransmission and CRC-failure
// counters through the real HARQ chase-combining path.
func TestPoolTelemetryHARQAndFailures(t *testing.T) {
	reg := telemetry.New(2)
	pool := testPool(t, Config{Workers: 1, Policy: EDF, DeadlineScale: 1000, Telemetry: reg})
	cfg := testCellConfig()
	rrh, err := NewRRHEmulator(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewCellProcessor(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	alloc := frame.Allocation{
		RNTI: 50, FirstPRB: 0, NumPRB: 6, MCS: 14, HARQProcess: 2,
		SNRdB: phy.MCS(14).OperatingSNR() - 2.5,
	}
	work := frame.SubframeWork{Cell: 1, TTI: 10, Allocations: []frame.Allocation{alloc}}
	payloads, err := rrh.RandomPayloads(work)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(w frame.SubframeWork) *Task {
		samples, err := rrh.Emit(w, payloads)
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan *Task, 1)
		if err := cp.IngestSubframe(samples, w, func(tk *Task) { ch <- tk }); err != nil {
			t.Fatal(err)
		}
		return <-ch
	}
	first := runOnce(work)
	work2 := work
	work2.TTI = 18
	work2.Allocations = []frame.Allocation{alloc}
	work2.Allocations[0].RV = 2
	second := runOnce(work2)
	if second.Err != nil {
		t.Fatalf("combined retransmission failed (first err=%v): %v", first.Err, second.Err)
	}
	if !bytes.Equal(second.Payload, payloads[0]) {
		t.Fatal("combined decode returned wrong payload")
	}

	snap := reg.Snapshot()
	if got := snap.Counter(MetricHARQRetransmits); got != 1 {
		t.Fatalf("harq retransmits %d", got)
	}
	if got := snap.Counter(CellMetricHARQRetransmits(1)); got != 1 {
		t.Fatalf("per-cell harq retransmits %d", got)
	}
	wantCRC := uint64(0)
	if first.Err != nil {
		wantCRC = 1
	}
	if got := snap.Counter(MetricCRCFailures); got != wantCRC {
		t.Fatalf("crc failures %d, want %d", got, wantCRC)
	}
	if got := snap.Counter(MetricTasksCompleted); got != 2 {
		t.Fatalf("completed %d", got)
	}
}

// TestPoolTelemetryDisabled verifies the opt-out: no registry, no metrics.
func TestPoolTelemetryDisabled(t *testing.T) {
	pool := testPool(t, Config{Workers: 1, DeadlineScale: 1000, DisableTelemetry: true})
	if pool.Telemetry() != nil {
		t.Fatal("disabled pool still exposes a registry")
	}
	work := frame.SubframeWork{
		Cell: 1, TTI: 3,
		Allocations: []frame.Allocation{
			{RNTI: 9, FirstPRB: 0, NumPRB: 3, MCS: 5, SNRdB: 30},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 1 || done[0].Err != nil {
		t.Fatalf("decode under disabled telemetry: %+v", done)
	}
}

// TestPoolTelemetryDefaultRegistry verifies default-on behaviour: with no
// explicit registry the pool records into telemetry.Default().
func TestPoolTelemetryDefaultRegistry(t *testing.T) {
	before := telemetry.Default().Snapshot().Counter(MetricTasksSubmitted)
	pool := testPool(t, Config{Workers: 1, DeadlineScale: 1000})
	if pool.Telemetry() != telemetry.Default() {
		t.Fatal("pool did not fall back to the default registry")
	}
	work := frame.SubframeWork{
		Cell: 2, TTI: 4,
		Allocations: []frame.Allocation{
			{RNTI: 9, FirstPRB: 0, NumPRB: 3, MCS: 5, SNRdB: 30},
		},
	}
	cfg := testCellConfig()
	cfg.ID = 2
	rrh, err := NewRRHEmulator(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewCellProcessor(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := rrh.RandomPayloads(work)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rrh.Emit(work, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.IngestSubframe(samples, work, nil); err != nil {
		t.Fatal(err)
	}
	pool.Drain()
	after := telemetry.Default().Snapshot().Counter(MetricTasksSubmitted)
	if after != before+1 {
		t.Fatalf("default registry submitted: %d -> %d", before, after)
	}
}
