package dataplane

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pran/internal/frame"
	"pran/internal/phy"
)

// dlWork builds a two-UE downlink subframe for the test cell.
func dlWork() frame.SubframeWork {
	return frame.SubframeWork{
		Cell: 1, TTI: 12,
		Allocations: []frame.Allocation{
			{RNTI: 200, FirstPRB: 0, NumPRB: 3, MCS: 9, Dir: phy.Downlink, SNRdB: 20},
			{RNTI: 201, FirstPRB: 3, NumPRB: 3, MCS: 15, Dir: phy.Downlink, SNRdB: 20},
		},
	}
}

func dlPayloads(t *testing.T, work frame.SubframeWork, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, len(work.Allocations))
	for i, a := range work.Allocations {
		tbs, err := a.TransportBlockSize()
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, tbs)
		for j := range p {
			p[j] = byte(rng.Intn(2))
		}
		out[i] = p
	}
	return out
}

func TestDownlinkBuildAndReceive(t *testing.T) {
	// The synthesized downlink subframe must be decodable by the UE side:
	// demodulate the time samples back into the grid, extract each
	// allocation, and run the receive chain.
	cfg := testCellConfig()
	dl, err := NewDownlinkProcessor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	work := dlWork()
	payloads := dlPayloads(t, work, 31)
	samples, err := dl.BuildSubframe(work, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if dl.EncodeTime <= 0 {
		t.Fatal("encode time not accounted")
	}

	// UE-side receiver: OFDM demod, extract, decode (noise-free channel).
	ofdm, err := phy.NewOFDMModulator(cfg.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := frame.NewGrid(cfg.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	fftSize := ofdm.FFTSize()
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		row, err := grid.Symbol(l)
		if err != nil {
			t.Fatal(err)
		}
		if err := ofdm.Demodulate(row, samples[l*fftSize:(l+1)*fftSize]); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range work.Allocations {
		res := make([]complex128, a.NumPRB*phy.DataREsPerPRB)
		if err := grid.Extract(res, a); err != nil {
			t.Fatal(err)
		}
		proc, err := phy.NewTransportProcessor(a.MCS, a.NumPRB)
		if err != nil {
			t.Fatal(err)
		}
		got, err := proc.Decode(res, 1e-4, uint16(a.RNTI), cfg.PCI, work.TTI.Subframe(), int(a.RV), nil)
		if err != nil {
			t.Fatalf("UE %d decode: %v", a.RNTI, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("UE %d payload mismatch", a.RNTI)
		}
	}
}

func TestDownlinkValidation(t *testing.T) {
	dl, err := NewDownlinkProcessor(testCellConfig())
	if err != nil {
		t.Fatal(err)
	}
	work := dlWork()
	if _, err := dl.BuildSubframe(work, nil); err == nil {
		t.Fatal("payload count mismatch accepted")
	}
	bad := work
	bad.Allocations = []frame.Allocation{{RNTI: 1, FirstPRB: 0, NumPRB: 99, MCS: 5}}
	if _, err := dl.BuildSubframe(bad, make([][]byte, 1)); err == nil {
		t.Fatal("invalid allocation accepted")
	}
	if _, err := NewDownlinkProcessor(frame.CellConfig{Bandwidth: phy.Bandwidth(7)}); err == nil {
		t.Fatal("bad cell config accepted")
	}
}

func TestEncodeOnPool(t *testing.T) {
	pool := testPool(t, Config{Workers: 2, Policy: EDF, DeadlineScale: 1000})
	cfg := testCellConfig()
	work := dlWork()
	payloads := dlPayloads(t, work, 32)

	var mu sync.Mutex
	results := map[frame.RNTI]*DownlinkTask{}
	var wg sync.WaitGroup
	wg.Add(len(work.Allocations))
	err := EncodeOnPool(pool, cfg, work, payloads, time.Now().Add(time.Second), func(dl *DownlinkTask) {
		mu.Lock()
		results[dl.Alloc.RNTI] = dl
		mu.Unlock()
		wg.Done()
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, a := range work.Allocations {
		dl := results[a.RNTI]
		if dl == nil || dl.Err != nil {
			t.Fatalf("rnti %d: %+v", a.RNTI, dl)
		}
		if dl.Elapsed <= 0 {
			t.Fatal("elapsed not recorded")
		}
		// The pooled encode must produce the exact symbols the inline
		// transmit chain produces.
		proc, _ := phy.NewTransportProcessor(a.MCS, a.NumPRB)
		want, err := proc.Encode(payloads[i], uint16(a.RNTI), cfg.PCI, work.TTI.Subframe(), int(a.RV))
		if err != nil {
			t.Fatal(err)
		}
		if len(dl.Symbols) != len(want) {
			t.Fatalf("rnti %d: %d symbols, want %d", a.RNTI, len(dl.Symbols), len(want))
		}
		for j := range want {
			if dl.Symbols[j] != want[j] {
				t.Fatalf("rnti %d: symbol %d differs", a.RNTI, j)
			}
		}
	}
	st := pool.Stats()
	if st.Completed != 2 {
		t.Fatalf("pool stats %+v", st)
	}
}

func TestEncodeOnPoolValidation(t *testing.T) {
	pool := testPool(t, Config{Workers: 1, DeadlineScale: 1})
	cfg := testCellConfig()
	work := dlWork()
	if err := EncodeOnPool(pool, cfg, work, nil, time.Now(), nil); err == nil {
		t.Fatal("payload mismatch accepted")
	}
}

func TestDownlinkCheaperThanUplink(t *testing.T) {
	// The provisioning asymmetry the paper relies on: encoding a TB costs
	// well under half of decoding it.
	proc, err := phy.NewTransportProcessor(16, 25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	payload := make([]byte, proc.TransportBlockSize())
	for i := range payload {
		payload[i] = byte(rng.Intn(2))
	}
	syms, err := proc.Encode(payload, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx := append([]complex128(nil), syms...)
	ch := phy.NewAWGNChannel(phy.MCS(16).OperatingSNR()+2, 34)
	ch.Apply(rx)

	var encTotal, decTotal time.Duration
	const reps = 3
	for i := 0; i < reps; i++ {
		if _, err := proc.Encode(payload, 1, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
		encTotal += proc.Timings.EncodeChain + proc.Timings.Modulate
		if _, err := proc.Decode(rx, ch.N0(), 1, 1, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
		decTotal += proc.Timings.Total()
	}
	if encTotal*2 >= decTotal {
		t.Fatalf("encode %v not well under half of decode %v", encTotal/reps, decTotal/reps)
	}
}
