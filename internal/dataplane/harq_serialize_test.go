package dataplane

import (
	"errors"
	"math/rand"
	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
)

// warmHARQ builds a manager with a few processes carrying nonzero LLRs.
func warmHARQ(t *testing.T, seed int64) *HARQManager {
	t.Helper()
	h := NewHARQManager()
	rng := rand.New(rand.NewSource(seed))
	for p := uint8(0); p < 3; p++ {
		a := frame.Allocation{
			RNTI: frame.RNTI(40 + p), NumPRB: 3 + int(p), MCS: phy.MCS(8 + p*3),
			HARQProcess: p, SNRdB: 10,
		}
		sb := h.Prepare(a, frame.TTI(p)*8)
		if sb == nil {
			t.Fatal("no buffer")
		}
		// Fill with recognizable values via a fake dematch: directly not
		// possible (private), so serialize-roundtrip equality is the check;
		// seed the buffer by running Prepare again at rv>0 (no reset) after
		// a real decode would have accumulated. Instead, use Unmarshal with
		// random bytes of the right size to set content.
		raw := make([]byte, sb.MarshalledSize())
		rng.Read(raw)
		if _, err := sb.Unmarshal(raw); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHARQSerializeRoundtrip(t *testing.T) {
	h := warmHARQ(t, 1)
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) <= 4 {
		t.Fatal("empty serialization")
	}
	// Restore into a fresh manager.
	h2 := NewHARQManager()
	if err := h2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if h2.Processes() != h.Processes() {
		t.Fatalf("process count %d != %d", h2.Processes(), h.Processes())
	}
	// Re-serializing must be byte-identical (deterministic order + exact
	// float preservation).
	blob2, err := h2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) != len(blob) {
		t.Fatalf("reserialized %d bytes != %d", len(blob2), len(blob))
	}
	for i := range blob {
		if blob[i] != blob2[i] {
			t.Fatalf("serialization differs at byte %d", i)
		}
	}
	if h2.StateBytes() != h.StateBytes() {
		t.Fatal("state size accounting differs after restore")
	}
}

func TestHARQSerializeEmpty(t *testing.T) {
	h := NewHARQManager()
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHARQManager()
	if err := h2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if h2.Processes() != 0 {
		t.Fatal("phantom processes after empty restore")
	}
}

func TestHARQUnmarshalRejectsCorruption(t *testing.T) {
	h := warmHARQ(t, 2)
	blob, _ := h.MarshalBinary()
	h2 := NewHARQManager()
	if err := h2.UnmarshalBinary(blob[:3]); !errors.Is(err, phy.ErrTooShort) {
		t.Fatalf("tiny blob: %v", err)
	}
	if err := h2.UnmarshalBinary(blob[:len(blob)-5]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	// Corrupt the declared buffer length of the first entry.
	bad := append([]byte(nil), blob...)
	bad[4+6+8] ^= 0x40 // inside the first entry's blob-length field
	if err := h2.UnmarshalBinary(bad); err == nil {
		t.Fatal("length-corrupted blob accepted")
	}
}

func TestHARQMigrationPreservesDecodeState(t *testing.T) {
	// Full functional check: a first transmission fails on server A, the
	// HARQ state migrates, and the retransmission decodes on server B by
	// combining with the migrated LLRs.
	const mcs, nprb = 14, 6
	proc, err := phy.NewTransportProcessor(mcs, nprb)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	payload := make([]byte, proc.TransportBlockSize())
	for i := range payload {
		payload[i] = byte(rng.Intn(2))
	}
	snr := phy.MCS(mcs).OperatingSNR() - 2.5
	ch := phy.NewAWGNChannel(snr, 4)
	alloc := frame.Allocation{RNTI: 9, NumPRB: nprb, MCS: mcs, HARQProcess: 1, RV: 0, SNRdB: snr}

	// Server A: first transmission into its HARQ manager.
	hA := NewHARQManager()
	sbA := hA.Prepare(alloc, 0)
	syms, err := proc.Encode(payload, 9, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx := append([]complex128(nil), syms...)
	ch.Apply(rx)
	_, errA := proc.Decode(rx, ch.N0(), 9, 5, 0, 0, sbA)

	// Migrate A → B.
	blob, err := hA.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	hB := NewHARQManager()
	if err := hB.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	// Server B: retransmission at rv=2 combines with migrated LLRs.
	alloc.RV = 2
	sbB := hB.Prepare(alloc, 8)
	if sbB == nil {
		t.Fatal("no buffer on destination")
	}
	syms2, err := proc.Encode(payload, 9, 5, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rx2 := append([]complex128(nil), syms2...)
	ch.Apply(rx2)
	got, errB := proc.Decode(rx2, ch.N0(), 9, 5, 0, 2, sbB)
	if errB != nil {
		t.Fatalf("post-migration combined decode failed (first TX err=%v): %v", errA, errB)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}
