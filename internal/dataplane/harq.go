package dataplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"pran/internal/frame"
	"pran/internal/phy"
)

// HARQManager keeps per-(RNTI, HARQ process) soft-combining state for one
// cell. On a first transmission (RV 0) the process's soft buffer is reset;
// on retransmissions with a matching configuration the existing buffer is
// returned so the decoder accumulates LLRs (incremental redundancy).
//
// This state is exactly what PRAN must migrate when the controller moves a
// cell between servers — StateBytes reports its size, which experiment E9
// records as the migration payload.
type HARQManager struct {
	states map[harqStateKey]*harqState
	protos map[procKey]*phy.TransportProcessor
}

type harqStateKey struct {
	rnti frame.RNTI
	proc uint8
}

type harqState struct {
	sb   *phy.SoftBuffer
	mcs  phy.MCS
	nprb int
	tti  frame.TTI
	// busy is true while an in-flight decode task owns sb (set by
	// prepareOwned on the driver goroutine, cleared by the pool on the
	// worker goroutine after the task's last use of the buffer). While
	// set, the manager must not reset, reuse, or hand out sb.
	busy atomic.Bool
}

// NewHARQManager returns an empty manager.
func NewHARQManager() *HARQManager {
	return &HARQManager{
		states: make(map[harqStateKey]*harqState),
		protos: make(map[procKey]*phy.TransportProcessor),
	}
}

// prototype returns a processor used only to size soft buffers.
func (h *HARQManager) prototype(mcs phy.MCS, nprb int) (*phy.TransportProcessor, error) {
	key := procKey{mcs: mcs, nprb: nprb}
	if p, ok := h.protos[key]; ok {
		return p, nil
	}
	p, err := phy.NewTransportProcessor(mcs, nprb)
	if err != nil {
		return nil, err
	}
	h.protos[key] = p
	return p, nil
}

// Prepare returns the soft buffer to use for an allocation's decode, or nil
// when no buffer could be built (the decode then runs without combining).
// RV 0 resets the process; a retransmission reuses the accumulated LLRs if
// the configuration matches, else the buffer is rebuilt. Prepare is for
// synchronous callers that decode on the calling goroutine; when the decode
// is handed to a pool worker, the cell processor uses prepareOwned so the
// buffer's ownership transfers with the task.
func (h *HARQManager) Prepare(a frame.Allocation, tti frame.TTI) *phy.SoftBuffer {
	sb, _ := h.prepare(a, tti)
	return sb
}

// prepareOwned is Prepare for the pool path: it additionally marks the
// returned buffer's state busy and returns the state handle the pool must
// release (clear busy) after the task's last use of the buffer. A nil
// buffer comes with a nil handle.
func (h *HARQManager) prepareOwned(a frame.Allocation, tti frame.TTI) (*phy.SoftBuffer, *harqState) {
	sb, st := h.prepare(a, tti)
	if st != nil {
		st.busy.Store(true)
	}
	return sb, st
}

func (h *HARQManager) prepare(a frame.Allocation, tti frame.TTI) (*phy.SoftBuffer, *harqState) {
	key := harqStateKey{a.RNTI, a.HARQProcess}
	st, ok := h.states[key]
	sameCfg := ok && st.mcs == a.MCS && st.nprb == a.NumPRB
	busy := ok && st.busy.Load()
	if a.RV != 0 && sameCfg {
		if busy {
			// The previous transmission's decode still owns the buffer
			// (the pool is lagging past the HARQ RTT). Decode without
			// combining rather than read LLRs a worker may still be
			// writing.
			return nil, nil
		}
		st.tti = tti
		return st.sb, st
	}
	proto, err := h.prototype(a.MCS, a.NumPRB)
	if err != nil {
		return nil, nil
	}
	if sameCfg && !busy {
		st.sb.Reset()
		st.tti = tti
		return st.sb, st
	}
	// New process, configuration change, or a first transmission while the
	// old buffer is still attached to an in-flight decode: start fresh and
	// let any in-flight task keep the detached buffer.
	st = &harqState{sb: proto.NewSoftBuffer(), mcs: a.MCS, nprb: a.NumPRB, tti: tti}
	h.states[key] = st
	return st.sb, st
}

// Processes returns the number of tracked HARQ processes.
func (h *HARQManager) Processes() int { return len(h.states) }

// StateBytes returns the total soft-buffer state size in bytes — the
// payload a cell migration must transfer.
func (h *HARQManager) StateBytes() int {
	total := 0
	for _, st := range h.states {
		proto, err := h.prototype(st.mcs, st.nprb)
		if err != nil {
			continue
		}
		// 3 streams × (K+4) float32 per code block.
		tbs := proto.TransportBlockSize()
		_ = tbs
		total += proto.NumCodeBlocks() * 3 * 4 * (softBufferK(proto) + 4)
	}
	return total
}

// softBufferK recovers the per-block size from a processor's segmentation.
func softBufferK(p *phy.TransportProcessor) int {
	seg, err := phy.Segment(p.TransportBlockSize() + 24)
	if err != nil {
		return 0
	}
	return seg.K
}

// Reset clears all HARQ state (used after a migration completes on the old
// host, or on cell teardown).
func (h *HARQManager) Reset() {
	h.states = make(map[harqStateKey]*harqState)
}

// MarshalBinary serializes the full HARQ state for migration: a count
// followed by, per process, its key (RNTI, process), configuration (MCS,
// PRB), last TTI, and the soft buffer's LLRs. The format is
// self-describing enough for UnmarshalBinary to rebuild buffers on the
// destination server. Processes whose buffer is attached to an in-flight
// decode (busy) are skipped: a pool worker owns those LLRs right now, so
// reading them would race, and a half-combined buffer is worthless to the
// destination — the snapshot simply carries the processes at rest.
func (h *HARQManager) MarshalBinary() ([]byte, error) {
	// Deterministic order for testability.
	keys := make([]harqStateKey, 0, len(h.states))
	for k, st := range h.states {
		if st.busy.Load() {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rnti != keys[j].rnti {
			return keys[i].rnti < keys[j].rnti
		}
		return keys[i].proc < keys[j].proc
	})
	dst := binary.BigEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		st := h.states[k]
		dst = binary.BigEndian.AppendUint16(dst, uint16(k.rnti))
		dst = append(dst, k.proc)
		dst = append(dst, byte(st.mcs))
		dst = binary.BigEndian.AppendUint16(dst, uint16(st.nprb))
		dst = binary.BigEndian.AppendUint64(dst, uint64(st.tti))
		dst = binary.BigEndian.AppendUint32(dst, uint32(st.sb.MarshalledSize()))
		dst = st.sb.MarshalAppend(dst)
	}
	return dst, nil
}

// UnmarshalBinary rebuilds HARQ state serialized by MarshalBinary,
// replacing any existing state.
func (h *HARQManager) UnmarshalBinary(src []byte) error {
	if len(src) < 4 {
		return fmt.Errorf("dataplane: HARQ state truncated: %w", phy.ErrTooShort)
	}
	n := binary.BigEndian.Uint32(src)
	pos := 4
	states := make(map[harqStateKey]*harqState, n)
	for i := uint32(0); i < n; i++ {
		const hdr = 2 + 1 + 1 + 2 + 8 + 4
		if pos+hdr > len(src) {
			return fmt.Errorf("dataplane: HARQ state entry %d truncated: %w", i, phy.ErrTooShort)
		}
		key := harqStateKey{
			rnti: frame.RNTI(binary.BigEndian.Uint16(src[pos:])),
			proc: src[pos+2],
		}
		mcs := phy.MCS(src[pos+3])
		nprb := int(binary.BigEndian.Uint16(src[pos+4:]))
		tti := frame.TTI(binary.BigEndian.Uint64(src[pos+6:]))
		blobLen := int(binary.BigEndian.Uint32(src[pos+14:]))
		pos += hdr
		if pos+blobLen > len(src) {
			return fmt.Errorf("dataplane: HARQ buffer %d truncated: %w", i, phy.ErrTooShort)
		}
		proto, err := h.prototype(mcs, nprb)
		if err != nil {
			return fmt.Errorf("dataplane: HARQ state entry %d: %w", i, err)
		}
		sb := proto.NewSoftBuffer()
		if sb.MarshalledSize() != blobLen {
			return fmt.Errorf("dataplane: HARQ buffer %d size %d != expected %d: %w",
				i, blobLen, sb.MarshalledSize(), ctrlBadState)
		}
		if _, err := sb.Unmarshal(src[pos : pos+blobLen]); err != nil {
			return err
		}
		pos += blobLen
		states[key] = &harqState{sb: sb, mcs: mcs, nprb: nprb, tti: tti}
	}
	h.states = states
	return nil
}

// ctrlBadState marks malformed migration payloads.
var ctrlBadState = errors.New("dataplane: malformed HARQ migration state")
