// Package dataplane implements PRAN's real-time execution layer: per-subframe
// uplink processing tasks running the actual DSP from internal/phy on a
// worker pool under earliest-deadline-first scheduling, with HARQ state
// management and per-task deadline accounting.
//
// LTE FDD HARQ gives the pool a hard budget: an uplink subframe received at
// time t must be decoded (and the ACK/NACK prepared) within ~3 ms. Because
// pure Go DSP runs tens of times slower than the SIMD C stacks the paper
// used, Config.DeadlineScale stretches the budget by a constant factor while
// preserving every ratio the experiments measure (utilization at a given
// miss rate, EDF-vs-FIFO gaps, pooling factors) — the substitution is
// recorded in DESIGN.md §2.
//
// Hot-path discipline (the "GC vs PHY deadlines" mitigation): workers keep
// per-configuration phy.TransportProcessor instances and reuse every buffer;
// steady-state processing performs no heap allocation. Config.NaiveAlloc
// deliberately disables the caches for the GC-pressure ablation in E5.
//
// Concurrency: a Pool owns Config.Workers resident goroutines; tasks enter
// through Submit (any goroutine) and results leave on the pool's completion
// channel. Each worker owns its processors and metrics outright — nothing on
// the processing path is shared between workers, so the hot path takes no
// locks; per-worker metrics merge at collection points. When
// Config.DecodeWorkers > 1 each processor additionally owns a
// phy.ParallelDecoder whose helper goroutines fan the task's code blocks
// out, making the effective core demand ≈ Workers × DecodeWorkers. The
// degradation ladder adds one more goroutine when Degrade.Enable is set —
// the headroom controller, which writes per-cell level words that Submit
// reads via atomic loads; workers only ever see the level frozen into
// Task.Degrade at submission (see degradeState). The full threading model
// is documented in docs/concurrency.md.
package dataplane

import (
	"container/heap"
	"time"

	"pran/internal/cluster"
	"pran/internal/frame"
	"pran/internal/phy"
)

// HARQBudget is the LTE FDD uplink processing budget the paper designs
// around: subframe reception to ACK/NACK in 3 ms, of which roughly 2 ms are
// available for pool compute after fronthaul and TX preparation.
const HARQBudget = 2 * time.Millisecond

// Task is one UE allocation's uplink processing work item. Tasks are created
// by the cell ingest path (one per allocation per subframe) and executed by
// pool workers.
type Task struct {
	// Cell and TTI identify the subframe this task belongs to.
	Cell frame.CellID
	// PCI is the cell's physical identity, needed for descrambling.
	PCI uint16
	// TTI is the subframe counter at which the allocation was received.
	TTI frame.TTI
	// Alloc is the UE allocation to decode.
	Alloc frame.Allocation
	// REs holds the allocation's extracted resource elements (constellation
	// symbols) — the demodulator input.
	REs []complex128
	// N0 is the noise power estimate for LLR scaling.
	N0 float64
	// Deadline is the absolute wall-clock completion deadline.
	Deadline time.Time
	// Enqueued is when the task entered the pool.
	Enqueued time.Time
	// Degrade is the degradation-ladder level this task decodes at,
	// stamped by Submit from the cell's current level (DegradeNone on a
	// NoDegrade pool). It selects the worker's iteration cap and kernel
	// override; tasks only batch with same-level tasks.
	Degrade cluster.DegradationLevel

	// Soft, when non-nil, supplies the HARQ soft-combining buffer for this
	// (cell, RNTI, HARQ process); the HARQ manager owns its lifecycle. The
	// task owns the buffer's contents from submission until the pool
	// releases softState after OnDone.
	Soft *phy.SoftBuffer
	// softState, when non-nil, is the HARQ state handle whose busy flag
	// the pool clears once the task is done with Soft.
	softState *harqState
	// runInstead, when non-nil, replaces the default uplink decode with a
	// custom work function (the downlink encode path uses this so both
	// directions share the pool's queue and deadline accounting).
	runInstead func(w *worker, t *Task)
	// OnDone, when non-nil, runs on the worker goroutine after processing.
	OnDone func(*Task)

	// Result fields, valid after processing.

	// Payload is the decoded transport block (nil on failure). It aliases
	// worker-owned memory; copy it before the next task if retained.
	Payload []byte
	// Err is the decode error (phy.ErrCRC on decode failure), nil on
	// success, or ErrAbandoned if the deadline passed before processing
	// started.
	Err error
	// Started and Finished bracket the processing time.
	Started, Finished time.Time
	// TurboIterations is the decoder iteration count consumed.
	TurboIterations int

	index int // heap index
}

// Missed reports whether the task finished (or was abandoned) after its
// deadline.
func (t *Task) Missed() bool { return t.Finished.After(t.Deadline) }

// joinable reports whether the task can ride a cross-codeword batch: only
// plain uplink decodes pool (custom work functions run alone).
func (t *Task) joinable() bool { return t.runInstead == nil }

// sameShape reports whether two tasks decode identically-shaped transport
// blocks at the same degradation level — the grouping key for
// cross-codeword batching (a joint dispatch runs one kernel and one
// iteration budget, so mixed-level groups must not form).
func (t *Task) sameShape(o *Task) bool {
	return t.Alloc.MCS == o.Alloc.MCS && t.Alloc.NumPRB == o.Alloc.NumPRB && t.Degrade == o.Degrade
}

// Latency returns enqueue-to-finish latency.
func (t *Task) Latency() time.Duration { return t.Finished.Sub(t.Enqueued) }

// taskQueue is a deadline-ordered heap (EDF). FIFO mode is implemented by
// ordering on Enqueued instead; ties break by insertion order via seq.
type taskQueue struct {
	items []*Task
	seqs  []uint64
	seq   uint64
	fifo  bool
}

func (q *taskQueue) Len() int { return len(q.items) }

func (q *taskQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	var ta, tb time.Time
	if q.fifo {
		ta, tb = a.Enqueued, b.Enqueued
	} else {
		ta, tb = a.Deadline, b.Deadline
	}
	if !ta.Equal(tb) {
		return ta.Before(tb)
	}
	return q.seqs[i] < q.seqs[j]
}

func (q *taskQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.seqs[i], q.seqs[j] = q.seqs[j], q.seqs[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *taskQueue) Push(x any) {
	t := x.(*Task)
	t.index = len(q.items)
	q.items = append(q.items, t)
	q.seqs = append(q.seqs, q.seq)
	q.seq++
}

func (q *taskQueue) Pop() any {
	n := len(q.items)
	t := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	q.seqs = q.seqs[:n-1]
	t.index = -1
	return t
}

// push/pop wrappers keep heap usage local.
func (q *taskQueue) push(t *Task) { heap.Push(q, t) }
func (q *taskQueue) pop() *Task   { return heap.Pop(q).(*Task) }

// takeMatch removes and returns the earliest-queued joinable task with the
// same transport-block shape as t, or nil. The linear scan is over the heap
// array (queue depths are tens of tasks at the operating points the
// experiments run), and removal reuses the heap's sift machinery.
func (q *taskQueue) takeMatch(t *Task) *Task {
	best := -1
	for i, c := range q.items {
		if !c.joinable() || !c.sameShape(t) {
			continue
		}
		if best < 0 || q.seqs[i] < q.seqs[best] {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return heap.Remove(q, best).(*Task)
}
