package dataplane

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"pran/internal/frame"
	"pran/internal/phy"
)

// testCellConfig is a small, fast cell used throughout the tests.
func testCellConfig() frame.CellConfig {
	return frame.CellConfig{ID: 1, PCI: 42, Bandwidth: phy.BW1_4MHz, Antennas: 1}
}

func testPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestQueueEDFOrder(t *testing.T) {
	q := taskQueue{}
	now := time.Now()
	a := &Task{Deadline: now.Add(3 * time.Millisecond)}
	b := &Task{Deadline: now.Add(1 * time.Millisecond)}
	c := &Task{Deadline: now.Add(2 * time.Millisecond)}
	q.push(a)
	q.push(b)
	q.push(c)
	if q.pop() != b || q.pop() != c || q.pop() != a {
		t.Fatal("EDF order wrong")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := taskQueue{fifo: true}
	now := time.Now()
	// Deadlines inverted vs arrival: FIFO must ignore them.
	a := &Task{Enqueued: now, Deadline: now.Add(9 * time.Millisecond)}
	b := &Task{Enqueued: now.Add(time.Microsecond), Deadline: now.Add(1 * time.Millisecond)}
	q.push(a)
	q.push(b)
	if q.pop() != a || q.pop() != b {
		t.Fatal("FIFO order wrong")
	}
}

func TestQueueTieBreakIsStable(t *testing.T) {
	q := taskQueue{}
	now := time.Now()
	var tasks []*Task
	for i := 0; i < 20; i++ {
		tk := &Task{Deadline: now, Alloc: frame.Allocation{RNTI: frame.RNTI(i)}}
		tasks = append(tasks, tk)
		q.push(tk)
	}
	for i := 0; i < 20; i++ {
		if q.pop() != tasks[i] {
			t.Fatal("equal-deadline tasks reordered")
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Workers: 0, DeadlineScale: 1}).Validate(); err == nil {
		t.Fatal("0 workers accepted")
	}
	if err := (Config{Workers: 1, DeadlineScale: 0}).Validate(); err == nil {
		t.Fatal("0 scale accepted")
	}
	c := Config{Workers: 1, DeadlineScale: 2}
	if c.Budget() != 4*time.Millisecond {
		t.Fatalf("budget %v", c.Budget())
	}
	if EDF.String() != "edf" || FIFO.String() != "fifo" {
		t.Fatal("policy names")
	}
}

// endToEnd pushes one subframe through RRH → CellProcessor → pool and
// returns the tasks in completion order.
func endToEnd(t *testing.T, pool *Pool, work frame.SubframeWork) []*Task {
	t.Helper()
	cfg := testCellConfig()
	rrh, err := NewRRHEmulator(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewCellProcessor(cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := rrh.RandomPayloads(work)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rrh.Emit(work, payloads)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var done []*Task
	var wg sync.WaitGroup
	wg.Add(len(work.Allocations))
	err = cp.IngestSubframe(samples, work, func(tk *Task) {
		// Payload aliases worker-owned memory; snapshot it before the worker
		// reuses the processor for a later task.
		tk.Payload = append([]byte(nil), tk.Payload...)
		mu.Lock()
		done = append(done, tk)
		mu.Unlock()
		wg.Done()
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Verify payloads against ground truth by RNTI.
	for _, tk := range done {
		if tk.Err != nil {
			continue
		}
		for i, a := range work.Allocations {
			if a.RNTI == tk.Alloc.RNTI && a.FirstPRB == tk.Alloc.FirstPRB {
				if !bytes.Equal(tk.Payload, payloads[i]) {
					t.Fatalf("rnti %d: decoded payload differs from transmitted", a.RNTI)
				}
			}
		}
	}
	return done
}

func TestEndToEndSubframeDecode(t *testing.T) {
	pool := testPool(t, Config{Workers: 2, Policy: EDF, DeadlineScale: 1000})
	work := frame.SubframeWork{
		Cell: 1, TTI: 42,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 12, SNRdB: phy.MCS(12).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 2 {
		t.Fatalf("%d tasks done", len(done))
	}
	for _, tk := range done {
		if tk.Err != nil {
			t.Fatalf("rnti %d: %v", tk.Alloc.RNTI, tk.Err)
		}
		if tk.TurboIterations < 1 {
			t.Fatal("iterations not recorded")
		}
		if tk.Latency() <= 0 {
			t.Fatal("latency not recorded")
		}
	}
	st := pool.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.CRCFailures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEndToEndLowSNRFailsCRC(t *testing.T) {
	pool := testPool(t, Config{Workers: 1, Policy: EDF, DeadlineScale: 1000})
	work := frame.SubframeWork{
		Cell: 1, TTI: 1,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 4, MCS: 20, SNRdB: phy.MCS(20).OperatingSNR() - 15},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 1 || !errors.Is(done[0].Err, phy.ErrCRC) {
		t.Fatalf("want CRC failure, got %v", done[0].Err)
	}
	if pool.Stats().CRCFailures != 1 {
		t.Fatal("CRC failure not counted")
	}
}

func TestHARQRetransmissionViaDataplane(t *testing.T) {
	// First TX below the operating point usually fails; a chase-combined
	// retransmission through the cell's HARQ manager must succeed.
	poolCfg := Config{Workers: 1, Policy: EDF, DeadlineScale: 1000}
	pool := testPool(t, poolCfg)
	cfg := testCellConfig()
	rrh, _ := NewRRHEmulator(cfg, 21)
	cp, _ := NewCellProcessor(cfg, pool)

	alloc := frame.Allocation{
		RNTI: 50, FirstPRB: 0, NumPRB: 6, MCS: 14, HARQProcess: 2,
		SNRdB: phy.MCS(14).OperatingSNR() - 2.5,
	}
	work := frame.SubframeWork{Cell: 1, TTI: 10, Allocations: []frame.Allocation{alloc}}
	payloads, _ := rrh.RandomPayloads(work)

	runOnce := func(w frame.SubframeWork) *Task {
		samples, err := rrh.Emit(w, payloads)
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan *Task, 1)
		if err := cp.IngestSubframe(samples, w, func(tk *Task) { ch <- tk }); err != nil {
			t.Fatal(err)
		}
		return <-ch
	}

	first := runOnce(work)
	// Retransmission 8 TTIs later, same HARQ process, RV 2.
	work2 := work
	work2.TTI = 18
	work2.Allocations = []frame.Allocation{alloc}
	work2.Allocations[0].RV = 2
	second := runOnce(work2)
	if second.Err != nil {
		t.Fatalf("combined retransmission failed (first err=%v): %v", first.Err, second.Err)
	}
	if !bytes.Equal(second.Payload, payloads[0]) {
		t.Fatal("combined decode returned wrong payload")
	}
	if cp.HARQ().Processes() == 0 || cp.HARQ().StateBytes() <= 0 {
		t.Fatal("HARQ state not tracked")
	}
}

func TestAbandonLate(t *testing.T) {
	// With an absurdly tight budget and AbandonLate, queued tasks must be
	// dropped as ErrAbandoned and counted as misses.
	pool := testPool(t, Config{Workers: 1, Policy: EDF, DeadlineScale: 1e-6, AbandonLate: true})
	work := frame.SubframeWork{
		Cell: 1, TTI: 3,
		Allocations: []frame.Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 3, MCS: 5, SNRdB: 30},
			{RNTI: 2, FirstPRB: 3, NumPRB: 3, MCS: 5, SNRdB: 30},
		},
	}
	done := endToEnd(t, pool, work)
	abandoned := 0
	for _, tk := range done {
		if errors.Is(tk.Err, ErrAbandoned) {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Fatal("no task abandoned under an impossible budget")
	}
	st := pool.Stats()
	if st.Abandoned != uint64(abandoned) || st.DeadlineMisses == 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.MissRate() <= 0 {
		t.Fatal("miss rate zero")
	}
}

func TestPoolCloseSemantics(t *testing.T) {
	pool, err := NewPool(Config{Workers: 2, DeadlineScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := pool.Submit(&Task{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestPoolDrain(t *testing.T) {
	pool := testPool(t, Config{Workers: 2, DeadlineScale: 1000})
	work := frame.SubframeWork{
		Cell: 1, TTI: 9,
		Allocations: []frame.Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 2, MCS: 4, SNRdB: 20},
			{RNTI: 2, FirstPRB: 2, NumPRB: 2, MCS: 4, SNRdB: 20},
			{RNTI: 3, FirstPRB: 4, NumPRB: 2, MCS: 4, SNRdB: 20},
		},
	}
	cfg := testCellConfig()
	rrh, _ := NewRRHEmulator(cfg, 3)
	cp, _ := NewCellProcessor(cfg, pool)
	payloads, _ := rrh.RandomPayloads(work)
	samples, _ := rrh.Emit(work, payloads)
	if err := cp.IngestSubframe(samples, work, nil); err != nil {
		t.Fatal(err)
	}
	pool.Drain()
	if pool.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if got := pool.Stats().Completed; got != 3 {
		t.Fatalf("completed %d", got)
	}
}

func TestNaiveAllocMode(t *testing.T) {
	pool := testPool(t, Config{Workers: 1, DeadlineScale: 1000, NaiveAlloc: true})
	work := frame.SubframeWork{
		Cell: 1, TTI: 2,
		Allocations: []frame.Allocation{
			{RNTI: 9, FirstPRB: 0, NumPRB: 3, MCS: 6, SNRdB: 20},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 1 || done[0].Err != nil {
		t.Fatalf("naive mode decode failed: %+v", done[0].Err)
	}
}

func TestIngestValidation(t *testing.T) {
	pool := testPool(t, Config{Workers: 1, DeadlineScale: 1})
	cp, err := NewCellProcessor(testCellConfig(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.IngestSubframe(make([]complex128, 7), frame.SubframeWork{}, nil); err == nil {
		t.Fatal("short sample buffer accepted")
	}
	n := cp.Config().Bandwidth.FFTSize() * phy.SymbolsPerSubframe
	bad := frame.SubframeWork{Allocations: []frame.Allocation{{RNTI: 1, FirstPRB: 0, NumPRB: 99, MCS: 5}}}
	if err := cp.IngestSubframe(make([]complex128, n), bad, nil); err == nil {
		t.Fatal("invalid work accepted")
	}
}

func TestRRHValidation(t *testing.T) {
	rrh, err := NewRRHEmulator(testCellConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	work := frame.SubframeWork{Allocations: []frame.Allocation{{RNTI: 1, FirstPRB: 0, NumPRB: 2, MCS: 3, SNRdB: 20}}}
	if _, err := rrh.Emit(work, nil); err == nil {
		t.Fatal("payload count mismatch accepted")
	}
	if _, err := NewRRHEmulator(frame.CellConfig{Bandwidth: phy.Bandwidth(9)}, 1); err == nil {
		t.Fatal("bad cell config accepted")
	}
}

func TestHARQManagerStateTransitions(t *testing.T) {
	h := NewHARQManager()
	a := frame.Allocation{RNTI: 1, NumPRB: 4, MCS: 10, HARQProcess: 0, RV: 0, SNRdB: 10}
	sb1 := h.Prepare(a, 1)
	if sb1 == nil {
		t.Fatal("no buffer for first TX")
	}
	// Retransmission same config: same buffer.
	a.RV = 2
	if h.Prepare(a, 9) != sb1 {
		t.Fatal("retransmission got a different buffer")
	}
	// New transmission resets but reuses the buffer.
	a.RV = 0
	if h.Prepare(a, 17) != sb1 {
		t.Fatal("new TX same config should reuse buffer")
	}
	// Config change rebuilds.
	a.MCS = 12
	if h.Prepare(a, 25) == sb1 {
		t.Fatal("config change must rebuild buffer")
	}
	if h.Processes() != 1 {
		t.Fatalf("processes %d", h.Processes())
	}
	h.Reset()
	if h.Processes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHARQManagerBusyOwnership(t *testing.T) {
	h := NewHARQManager()
	a := frame.Allocation{RNTI: 5, NumPRB: 4, MCS: 10, HARQProcess: 1, RV: 0, SNRdB: 10}
	sb1, st1 := h.prepareOwned(a, 1)
	if sb1 == nil || st1 == nil {
		t.Fatal("no buffer for first TX")
	}
	// Retransmission while the first decode still owns the buffer: no
	// combining buffer rather than a racy handout.
	a.RV = 2
	if sb, st := h.prepareOwned(a, 9); sb != nil || st != nil {
		t.Fatal("busy buffer handed out for retransmission")
	}
	// A fresh transmission while busy detaches the old buffer instead of
	// resetting it under the in-flight task.
	a.RV = 0
	sb2, st2 := h.prepareOwned(a, 17)
	if sb2 == nil || sb2 == sb1 {
		t.Fatal("busy buffer reset/reused for new TX")
	}
	// Release both tasks (what the pool does after OnDone); the process's
	// current buffer becomes reusable again.
	st1.busy.Store(false)
	st2.busy.Store(false)
	a.RV = 2
	if sb, _ := h.prepareOwned(a, 25); sb != sb2 {
		t.Fatal("released buffer not reused for retransmission")
	}
}

func TestCalibrateDeadlineScale(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	s, err := CalibrateDeadlineScale(phy.BW5MHz, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 || s > 1e4 {
		t.Fatalf("scale %v implausible", s)
	}
}

func TestEndToEndInt16Kernel(t *testing.T) {
	pool := testPool(t, Config{Workers: 2, Policy: EDF, DeadlineScale: 1000, DecodeKernel: phy.KernelInt16})
	if pool.Config().DecodeKernel != phy.KernelInt16 {
		t.Fatal("kernel not recorded in config")
	}
	work := frame.SubframeWork{
		Cell: 1, TTI: 42,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 12, SNRdB: phy.MCS(12).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 2 {
		t.Fatalf("%d tasks done", len(done))
	}
	for _, tk := range done {
		if tk.Err != nil {
			t.Fatalf("rnti %d: %v", tk.Alloc.RNTI, tk.Err)
		}
	}
}

func TestConfigRejectsBadKernel(t *testing.T) {
	cfg := Config{Workers: 1, DeadlineScale: 1, DecodeKernel: phy.DecodeKernel(9)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid decode kernel accepted")
	}
}

func TestPoolDrainEventDriven(t *testing.T) {
	// Drain must wake promptly when the pool quiesces and must be safe with
	// concurrent drainers and submitters (race-detector coverage for the
	// idle condition variable).
	pool := testPool(t, Config{Workers: 2, DeadlineScale: 1000})
	work := frame.SubframeWork{
		Cell: 1, TTI: 4,
		Allocations: []frame.Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 2, MCS: 4, SNRdB: 20},
			{RNTI: 2, FirstPRB: 2, NumPRB: 2, MCS: 4, SNRdB: 20},
		},
	}
	cfg := testCellConfig()
	rrh, _ := NewRRHEmulator(cfg, 5)
	cp, _ := NewCellProcessor(cfg, pool)
	for round := 0; round < 5; round++ {
		payloads, _ := rrh.RandomPayloads(work)
		samples, _ := rrh.Emit(work, payloads)
		if err := cp.IngestSubframe(samples, work, nil); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for d := 0; d < 3; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool.Drain()
			}()
		}
		wg.Wait()
		if pool.QueueLen() != 0 {
			t.Fatal("queue not drained")
		}
	}
	// Drain on an idle pool returns immediately.
	pool.Drain()
}

func TestPoolFrontEndConfig(t *testing.T) {
	// A staged-front-end pool must decode identically to the fused default.
	if err := (Config{Workers: 1, DeadlineScale: 1, FrontEnd: phy.FrontEnd(7)}).Validate(); err == nil {
		t.Fatal("bogus front-end accepted")
	}
	work := frame.SubframeWork{
		Cell: 1, TTI: 3,
		Allocations: []frame.Allocation{
			{RNTI: 8, FirstPRB: 0, NumPRB: 4, MCS: 9, SNRdB: 20},
		},
	}
	var outputs [][]byte
	for _, fe := range []phy.FrontEnd{phy.FrontEndFused, phy.FrontEndStaged} {
		pool := testPool(t, Config{Workers: 1, DeadlineScale: 1000, FrontEnd: fe})
		done := endToEnd(t, pool, work)
		if len(done) != 1 || done[0].Err != nil {
			t.Fatalf("front-end %v decode failed: %+v", fe, done[0].Err)
		}
		outputs = append(outputs, append([]byte(nil), done[0].Payload...))
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatal("fused and staged pools decoded different payloads")
	}
}
