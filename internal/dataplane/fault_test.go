package dataplane

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"pran/internal/faultinject"
	"pran/internal/frame"
	"pran/internal/phy"
)

// TestHARQSnapshotRestoreProperty is the randomized counterpart of
// TestHARQSerializeRoundtrip: across many seeded shapes (process counts,
// configurations, buffer contents) a snapshot → restore → snapshot cycle
// must be bit-identical, and a retransmission Prepare on the restored
// manager must hand back the migrated LLRs untouched — the property cell
// failover depends on (restore resumes combining, it never resets).
func TestHARQSnapshotRestoreProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHARQManager()
		n := rng.Intn(7)
		allocs := make([]frame.Allocation, 0, n)
		bufs := make([][]byte, 0, n)
		for p := 0; p < n; p++ {
			a := frame.Allocation{
				RNTI:        frame.RNTI(1 + p),
				NumPRB:      1 + rng.Intn(10),
				MCS:         phy.MCS(5 + rng.Intn(15)),
				HARQProcess: uint8(p),
				SNRdB:       10,
			}
			sb := h.Prepare(a, frame.TTI(rng.Intn(100)))
			if sb == nil {
				t.Fatalf("seed %d: no buffer for process %d", seed, p)
			}
			raw := make([]byte, sb.MarshalledSize())
			rng.Read(raw)
			if _, err := sb.Unmarshal(raw); err != nil {
				t.Fatalf("seed %d: seed buffer: %v", seed, err)
			}
			allocs = append(allocs, a)
			bufs = append(bufs, sb.MarshalAppend(nil))
		}
		blob, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		h2 := NewHARQManager()
		if err := h2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		blob2, err := h2.MarshalBinary()
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("seed %d: restore not bit-identical (%d vs %d bytes)", seed, len(blob), len(blob2))
		}
		if h2.Processes() != h.Processes() || h2.StateBytes() != h.StateBytes() {
			t.Fatalf("seed %d: accounting differs after restore", seed)
		}
		// A retransmission on the restored manager must combine with the
		// migrated LLRs: Prepare at RV>0 returns the buffer unreset.
		for i, a := range allocs {
			a.RV = 2
			sb := h2.Prepare(a, frame.TTI(1000+i))
			if sb == nil {
				t.Fatalf("seed %d: no buffer on retransmission for process %d", seed, i)
			}
			if !bytes.Equal(sb.MarshalAppend(nil), bufs[i]) {
				t.Fatalf("seed %d: process %d LLRs changed across migration", seed, i)
			}
		}
	}
}

// TestPoolFaultHookCrash wires faultinject.WorkerFault into the pool and
// checks the crash schedule surfaces as failed tasks while untouched tasks
// still decode.
func TestPoolFaultHookCrash(t *testing.T) {
	wf := faultinject.NewWorkerFault(11)
	wf.CrashEvery = 2
	pool := testPool(t, Config{
		Workers: 1, Policy: EDF, DeadlineScale: 1000,
		FaultHook: wf.Hook,
	})
	work := frame.SubframeWork{
		Cell: 1, TTI: 7,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 2 {
		t.Fatalf("completed %d tasks", len(done))
	}
	crashed, decoded := 0, 0
	for _, tk := range done {
		switch {
		case errors.Is(tk.Err, faultinject.ErrWorkerCrash):
			crashed++
		case tk.Err == nil:
			decoded++
		default:
			t.Fatalf("unexpected task error: %v", tk.Err)
		}
	}
	if crashed != 1 || decoded != 1 {
		t.Fatalf("crashed=%d decoded=%d, want 1/1 with CrashEvery=2", crashed, decoded)
	}
}
