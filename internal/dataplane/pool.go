package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pran/internal/metrics"
	"pran/internal/phy"
	"pran/internal/telemetry"
)

// Pool scheduling policies.
const (
	// EDF processes the task with the earliest deadline first — PRAN's
	// default, which maximizes schedulable utilization.
	EDF SchedPolicy = iota
	// FIFO processes tasks in arrival order — the baseline E5 compares
	// against.
	FIFO
)

// SchedPolicy selects the worker pool's queueing discipline.
type SchedPolicy int

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	if p == FIFO {
		return "fifo"
	}
	return "edf"
}

// Sentinel errors.
var (
	// ErrAbandoned marks tasks dropped unprocessed because their deadline
	// passed while queued (the receiver will NACK; HARQ retransmits).
	ErrAbandoned = errors.New("dataplane: task abandoned past deadline")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("dataplane: pool closed")
)

// Config parameterizes a worker pool.
type Config struct {
	// Workers is the number of processing goroutines (≈ dedicated cores).
	Workers int
	// DecodeWorkers is the intra-task parallelism: each pool worker fans a
	// transport block's code blocks across this many turbo decoders (its
	// own goroutine plus DecodeWorkers-1 resident helpers per cached
	// processor). 0 or 1 means serial decode. The effective core demand of
	// a fully busy pool is ≈ Workers × DecodeWorkers; provisioning math in
	// internal/cluster.CostModel.AllocCostWorkers uses the same knob.
	DecodeWorkers int
	// DecodeKernel selects the turbo SISO arithmetic every processor this
	// pool creates runs (phy.KernelFloat32 by default, phy.KernelInt16 for
	// the quantized fast path). Kernel state is per-worker resident — each
	// cached processor owns its kernel's buffers — so changing this field
	// never shares mutable state across workers.
	DecodeKernel phy.DecodeKernel
	// FrontEnd selects the decode front-end every processor this pool
	// creates runs: phy.FrontEndFused (default) collapses demodulation,
	// descrambling, and soft de-rate-matching into one per-code-block pass
	// (overlapped with turbo decoding when DecodeWorkers > 1);
	// phy.FrontEndStaged is the three-sweep reference pipeline. Decoded
	// output is bit-identical either way.
	FrontEnd phy.FrontEnd
	// DecodeBatch, when ≥ 2, turbo-decodes code blocks through width-
	// DecodeBatch lockstep batch kernels (phy.BatchDecoderI16) instead of
	// one scalar decode per block. Requires DecodeKernel == phy.KernelInt16;
	// output is bit-identical to the scalar path. 0 or 1 keeps scalar
	// decoding.
	DecodeBatch int
	// BatchTasks, when ≥ 2, enables cross-codeword batching: a worker
	// claiming an uplink task also claims up to BatchTasks-1 further queued
	// tasks with the same (MCS, NumPRB) shape — across cells — and decodes
	// all of them in one joint fan-out, so lockstep batches span transport-
	// block boundaries and the per-pass kernel overheads amortize across
	// UEs. CRC failures stay isolated per transport block. Requires the
	// fused front-end. 0 or 1 decodes one task at a time.
	BatchTasks int
	// Policy selects EDF or FIFO dispatch.
	Policy SchedPolicy
	// DeadlineScale stretches the HARQ budget to compensate for unoptimized
	// DSP throughput (see the package comment). 1.0 means the real 3 ms
	// LTE budget. Typical measured-mode experiments use the value returned
	// by CalibrateDeadlineScale.
	DeadlineScale float64
	// AbandonLate, when true, drops tasks whose deadline already passed
	// instead of decoding them anyway (PRAN behaviour: a late UL decode is
	// useless — the NACK window has closed).
	AbandonLate bool
	// NaiveAlloc disables worker-local processor caching so every task
	// allocates fresh DSP state — the GC-pressure ablation knob.
	NaiveAlloc bool
	// Degrade parameterizes the compute-aware degradation ladder (see
	// DegradeConfig and cluster.DegradationLevel). The ladder's per-cell
	// level words exist on every pool unless NoDegrade is set; the
	// automatic headroom controller runs only when Degrade.Enable is true.
	Degrade DegradeConfig
	// NoDegrade hard-disables the degradation ladder: no level registry,
	// no task stamping, no controller — the exact pre-ladder pipeline (the
	// bit-identity baseline the regression tests compare against).
	NoDegrade bool
	// Telemetry selects the registry this pool records runtime metrics
	// into; nil means the process-wide telemetry.Default(). Telemetry is
	// default-on — the record path is lock-free and allocation-free, and
	// experiment E14 pins its overhead below 1% — so measured runs may
	// leave it enabled. Set DisableTelemetry to opt out entirely.
	Telemetry *telemetry.Registry
	// DisableTelemetry turns off all runtime instrumentation for this
	// pool (Pool.Telemetry then returns nil).
	DisableTelemetry bool
	// FaultHook, when non-nil, runs at the start of every task execution
	// on the worker's goroutine — the fault-injection point (see
	// internal/faultinject.WorkerFault). Returning an error fails the task
	// as a simulated worker crash; sleeping inside emulates a stall. Nil
	// (the default) costs nothing.
	FaultHook func(worker int) error
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("dataplane: %d workers: %w", c.Workers, phy.ErrBadParameter)
	}
	if c.DecodeWorkers < 0 {
		return fmt.Errorf("dataplane: %d decode workers: %w", c.DecodeWorkers, phy.ErrBadParameter)
	}
	if err := c.DecodeKernel.Validate(); err != nil {
		return fmt.Errorf("dataplane: %w", err)
	}
	if err := c.FrontEnd.Validate(); err != nil {
		return fmt.Errorf("dataplane: %w", err)
	}
	if c.DecodeBatch < 0 {
		return fmt.Errorf("dataplane: %d decode batch width: %w", c.DecodeBatch, phy.ErrBadParameter)
	}
	if c.DecodeBatch > 1 && c.DecodeKernel != phy.KernelInt16 {
		return fmt.Errorf("dataplane: batched decode requires the int16 kernel: %w", phy.ErrBadParameter)
	}
	if c.BatchTasks < 0 {
		return fmt.Errorf("dataplane: %d batch tasks: %w", c.BatchTasks, phy.ErrBadParameter)
	}
	if c.BatchTasks > 1 && c.FrontEnd != phy.FrontEndFused {
		return fmt.Errorf("dataplane: cross-task batching requires the fused front-end: %w", phy.ErrBadParameter)
	}
	if c.DeadlineScale <= 0 {
		return fmt.Errorf("dataplane: deadline scale %v: %w", c.DeadlineScale, phy.ErrBadParameter)
	}
	if c.NoDegrade && c.Degrade.Enable {
		return fmt.Errorf("dataplane: NoDegrade conflicts with Degrade.Enable: %w", phy.ErrBadParameter)
	}
	if !c.NoDegrade {
		if err := c.Degrade.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Budget returns the scaled per-task processing budget.
func (c Config) Budget() time.Duration {
	return time.Duration(float64(HARQBudget) * c.DeadlineScale)
}

// decodeWorkers normalizes the intra-task parallelism (0 means serial).
func (c Config) decodeWorkers() int {
	if c.DecodeWorkers < 1 {
		return 1
	}
	return c.DecodeWorkers
}

// decodeBatch normalizes the lockstep width (0 means scalar).
func (c Config) decodeBatch() int {
	if c.DecodeBatch < 1 {
		return 1
	}
	return c.DecodeBatch
}

// batchTasks normalizes the cross-task batching limit (0 means off).
func (c Config) batchTasks() int {
	if c.BatchTasks < 1 {
		return 1
	}
	return c.BatchTasks
}

// Stats aggregates pool-level counters. Retrieve a snapshot with
// Pool.Stats.
type Stats struct {
	// Submitted, Completed, Abandoned, CRCFailures count tasks.
	Submitted, Completed, Abandoned, CRCFailures uint64
	// DeadlineMisses counts tasks finishing after their deadline
	// (including abandoned ones).
	DeadlineMisses uint64
	// Latency summarizes enqueue-to-finish latency in seconds.
	Latency metrics.Summary
	// ProcTime summarizes pure processing time in seconds.
	ProcTime metrics.Summary
}

// MissRate returns the fraction of submitted tasks that missed.
func (s Stats) MissRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Submitted)
}

// Pool is the PRAN data-plane worker pool: N workers pulling UE-decode tasks
// from a shared deadline-ordered queue and running the real uplink DSP.
// Create with NewPool, feed with Submit, stop with Close.
type Pool struct {
	cfg Config
	tel *poolTelemetry // nil when Config.DisableTelemetry
	deg *degradeState  // nil when Config.NoDegrade

	mu   sync.Mutex
	cond *sync.Cond // wakes workers: signaled per Submit, broadcast on Close
	// idle wakes Drain callers when the pool quiesces. It must be distinct
	// from cond, which Submit signals to wake exactly one *worker* — a
	// drainer parked on the same condition variable could consume that
	// signal and strand the task until the next submission.
	idle     *sync.Cond
	queue    taskQueue
	closed   bool
	stats    Stats
	inflight int

	wg sync.WaitGroup
}

// NewPool starts the workers.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg}
	if !cfg.DisableTelemetry {
		reg := cfg.Telemetry
		if reg == nil {
			reg = telemetry.Default()
		}
		p.tel = newPoolTelemetry(reg, cfg.Workers)
	}
	p.cond = sync.NewCond(&p.mu)
	p.idle = sync.NewCond(&p.mu)
	p.queue.fifo = cfg.Policy == FIFO
	if !cfg.NoDegrade {
		p.deg = newDegradeState(p)
		if cfg.Degrade.Enable {
			go p.deg.run()
		}
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := newWorker(p, i)
		go w.run()
	}
	return p, nil
}

// Config returns the pool's configuration.
func (p *Pool) Config() Config { return p.cfg }

// Telemetry returns the registry this pool records into, or nil when
// instrumentation is disabled. Scrape it with Telemetry().Snapshot().
func (p *Pool) Telemetry() *telemetry.Registry {
	if p.tel == nil {
		return nil
	}
	return p.tel.reg
}

// Submit enqueues a task. The task's Deadline must already be set (use
// Config.Budget from its Enqueued time); OnDone fires on a worker goroutine
// when the task completes or is abandoned.
func (p *Pool) Submit(t *Task) error {
	if p.deg != nil {
		// Freeze the cell's current ladder level into the task: the
		// degrade knobs a decode runs with are decided at submission, so a
		// mid-queue transition never splits one task's decisions.
		t.Degrade = p.deg.level(t.Cell)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.stats.Submitted++
	p.queue.push(t)
	depth := p.queue.Len()
	p.mu.Unlock()
	if p.tel != nil {
		p.tel.submitted.Inc(p.tel.driverShard)
		p.tel.queueDepth.Set(int64(depth))
	}
	p.cond.Signal()
	return nil
}

// QueueLen returns the number of tasks waiting (not yet picked up).
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue.Len()
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Drain blocks until the queue is empty and all in-flight tasks finished.
// It is event-driven: drainers park on the pool's idle condition variable
// and the last finishing task broadcasts it, so there is no polling loop on
// this path.
func (p *Pool) Drain() {
	p.mu.Lock()
	for p.queue.Len() > 0 || p.inflight > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// Close stops accepting tasks, waits for queued work to finish, and joins
// the workers.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	if p.deg != nil && p.cfg.Degrade.Enable {
		close(p.deg.stop)
		<-p.deg.done
	}
	return nil
}

// nextGroup blocks for the next task group or returns nil when the pool is
// closed and drained. Without cross-task batching every group is a single
// task. With Config.BatchTasks ≥ 2, claiming an uplink decode task also
// claims up to BatchTasks-1 further queued uplink tasks of the same
// (MCS, NumPRB) shape — those decode jointly on the claiming worker, so the
// lockstep kernel sees batches spanning transport blocks. The extra claims
// take same-shape tasks in queue order regardless of deadline rank: they
// were going to be decoded anyway, and riding an already-paid batch pass is
// never slower than waiting for their own turn. buf backs the returned
// slice (worker-owned scratch, so claiming allocates nothing).
func (p *Pool) nextGroup(buf []*Task) []*Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.queue.Len() > 0 {
			t := p.queue.pop()
			p.inflight++
			buf = append(buf[:0], t)
			if limit := p.cfg.batchTasks(); limit > 1 && t.joinable() {
				for len(buf) < limit {
					m := p.queue.takeMatch(t)
					if m == nil {
						break
					}
					p.inflight++
					buf = append(buf, m)
				}
			}
			if p.tel != nil {
				p.tel.queueDepth.Set(int64(p.queue.Len()))
			}
			return buf
		}
		if p.closed {
			return nil
		}
		p.cond.Wait()
	}
}

// finish records completion accounting for a task. shard is the finishing
// worker's ID, used as the telemetry shard so per-worker breakdowns line up.
func (p *Pool) finish(t *Task, shard int) {
	p.mu.Lock()
	p.inflight--
	switch {
	case errors.Is(t.Err, ErrAbandoned):
		p.stats.Abandoned++
	case errors.Is(t.Err, phy.ErrCRC):
		p.stats.CRCFailures++
		p.stats.Completed++
	case t.Err == nil:
		p.stats.Completed++
	default:
		p.stats.Completed++
	}
	if t.Missed() {
		p.stats.DeadlineMisses++
	}
	p.stats.Latency.Observe(t.Latency().Seconds())
	if !t.Started.IsZero() {
		p.stats.ProcTime.Observe(t.Finished.Sub(t.Started).Seconds())
	}
	if p.queue.Len() == 0 && p.inflight == 0 {
		p.idle.Broadcast()
	}
	p.mu.Unlock()
	if p.deg != nil {
		p.deg.observe(t)
	}
	if tel := p.tel; tel != nil {
		switch {
		case errors.Is(t.Err, ErrAbandoned):
			tel.abandoned.Inc(shard)
		case errors.Is(t.Err, phy.ErrCRC):
			tel.crcFail.Inc(shard)
			tel.completed.Inc(shard)
		default:
			tel.completed.Inc(shard)
		}
		if t.Missed() {
			tel.misses.Inc(shard)
		}
		tel.latency.ObserveDuration(shard, t.Latency())
		if !t.Started.IsZero() {
			busy := t.Finished.Sub(t.Started)
			tel.procTime.ObserveDuration(shard, busy)
			tel.busyNanos.Add(shard, uint64(busy.Nanoseconds()))
		}
	}
	if t.OnDone != nil {
		t.OnDone(t)
	}
	if t.softState != nil {
		// Hand the HARQ soft buffer back to its manager: the atomic store
		// is the happens-before edge that lets the driver goroutine touch
		// the buffer again (reset, reuse, or migration serialization).
		t.softState.busy.Store(false)
		t.softState = nil
	}
}
