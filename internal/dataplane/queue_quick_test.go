package dataplane

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// TestEDFQueueMatchesReferenceSort property-checks the heap against a
// reference: popping everything after a random interleaving of pushes must
// yield deadlines in nondecreasing order, with FIFO order among equal
// deadlines.
func TestEDFQueueMatchesReferenceSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := time.Unix(0, 0)
		n := 1 + rng.Intn(100)
		q := taskQueue{}
		type entry struct {
			deadline time.Time
			seq      int
		}
		var ref []entry
		tasks := make(map[*Task]entry, n)
		for i := 0; i < n; i++ {
			// Coarse deadlines force plenty of ties.
			d := base.Add(time.Duration(rng.Intn(8)) * time.Millisecond)
			tk := &Task{Deadline: d, Enqueued: base.Add(time.Duration(i))}
			q.push(tk)
			e := entry{d, i}
			ref = append(ref, e)
			tasks[tk] = e
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].deadline.Before(ref[j].deadline) })
		for i := 0; i < n; i++ {
			got := tasks[q.pop()]
			if !got.deadline.Equal(ref[i].deadline) || got.seq != ref[i].seq {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOQueueMatchesArrivalOrder property-checks the FIFO variant against
// pure arrival order regardless of deadlines.
func TestFIFOQueueMatchesArrivalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := time.Unix(0, 0)
		n := 1 + rng.Intn(100)
		q := taskQueue{fifo: true}
		var order []*Task
		for i := 0; i < n; i++ {
			tk := &Task{
				Deadline: base.Add(time.Duration(rng.Intn(1000)) * time.Microsecond),
				Enqueued: base.Add(time.Duration(i) * time.Microsecond),
			}
			q.push(tk)
			order = append(order, tk)
		}
		for i := 0; i < n; i++ {
			if q.pop() != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueInterleavedPushPop stresses the heap with mixed operations.
func TestQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Unix(0, 0)
	q := taskQueue{}
	live := 0
	var lastPopped time.Time
	for op := 0; op < 5000; op++ {
		if live == 0 || rng.Intn(3) > 0 {
			q.push(&Task{Deadline: base.Add(time.Duration(rng.Intn(1_000_000)) * time.Microsecond)})
			live++
		} else {
			tk := q.pop()
			live--
			// Within one drain phase deadlines pop in order; pushes can
			// introduce earlier deadlines, so only check when the queue
			// was drained in between.
			_ = tk
			lastPopped = tk.Deadline
		}
	}
	// Drain: strictly ordered from here on.
	prev := time.Time{}
	for q.Len() > 0 {
		tk := q.pop()
		if !prev.IsZero() && tk.Deadline.Before(prev) {
			t.Fatal("drain out of order")
		}
		prev = tk.Deadline
	}
	_ = lastPopped
}
