package dataplane

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"pran/internal/cluster"
	"pran/internal/frame"
	"pran/internal/phy"
)

func TestDegradeConfigValidate(t *testing.T) {
	bad := []Config{
		{Workers: 1, DeadlineScale: 1, Degrade: DegradeConfig{MaxLevel: cluster.MaxDegradationLevel + 1}},
		{Workers: 1, DeadlineScale: 1, Degrade: DegradeConfig{Period: -time.Millisecond}},
		{Workers: 1, DeadlineScale: 1, Degrade: DegradeConfig{Alpha: 1.5}},
		{Workers: 1, DeadlineScale: 1, Degrade: DegradeConfig{RaiseDepth: 1, LowerDepth: 2}},
		{Workers: 1, DeadlineScale: 1, Degrade: DegradeConfig{RaiseSlack: 0.5, LowerSlack: 0.4}},
		{Workers: 1, DeadlineScale: 1, NoDegrade: true, Degrade: DegradeConfig{Enable: true}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := (Config{Workers: 1, DeadlineScale: 1, Degrade: DegradeConfig{Enable: true}}).Validate(); err != nil {
		t.Fatalf("default ladder config rejected: %v", err)
	}
}

// decodeAtLevel runs one subframe through a pool pinned at lvl and returns
// the completed tasks keyed by RNTI.
func decodeAtLevel(t *testing.T, work frame.SubframeWork, lvl cluster.DegradationLevel) map[frame.RNTI]*Task {
	t.Helper()
	pool := testPool(t, Config{Workers: 1, Policy: EDF, DeadlineScale: 1000})
	if err := pool.SetCellLevel(work.Cell, lvl); err != nil {
		t.Fatal(err)
	}
	out := make(map[frame.RNTI]*Task)
	for _, tk := range endToEnd(t, pool, work) {
		out[tk.Alloc.RNTI] = tk
	}
	return out
}

// TestLadderMonotoneProperty is the ladder's behavioural contract: walking
// up the rungs never increases per-TB decode work (iterations stay within
// each rung's shrinking budget) and never changes the CRC outcome of a
// block that both rungs decode successfully — comfortable blocks survive
// every rung bit-for-bit, hopeless blocks fail every rung.
func TestLadderMonotoneProperty(t *testing.T) {
	good := frame.SubframeWork{
		Cell: 1, TTI: 1,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 12, SNRdB: phy.MCS(12).OperatingSNR() + 4},
		},
	}
	var ref map[frame.RNTI]*Task
	for lvl := cluster.DegradeNone; lvl <= cluster.MaxDegradationLevel; lvl++ {
		done := decodeAtLevel(t, good, lvl)
		cap := lvl.IterCap()
		if cap == 0 {
			cap = phy.DefaultTurboIterations
		}
		for rnti, tk := range done {
			if tk.Err != nil {
				t.Fatalf("level %v: comfortable block rnti %d failed: %v", lvl, rnti, tk.Err)
			}
			if tk.Degrade != lvl {
				t.Fatalf("level %v: task stamped %v", lvl, tk.Degrade)
			}
			if tk.TurboIterations > cap {
				t.Fatalf("level %v: %d iterations exceed the rung's cap %d", lvl, tk.TurboIterations, cap)
			}
			if ref != nil && !bytes.Equal(tk.Payload, ref[rnti].Payload) {
				t.Fatalf("level %v: rnti %d payload diverged from level %v", lvl, rnti, lvl-1)
			}
		}
		ref = done
	}
	// A hopeless block (far below the operating point) fails CRC at every
	// rung — degradation never turns garbage into a pass.
	hopeless := frame.SubframeWork{
		Cell: 1, TTI: 1,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 4, MCS: 20, SNRdB: phy.MCS(20).OperatingSNR() - 15},
		},
	}
	for lvl := cluster.DegradeNone; lvl <= cluster.MaxDegradationLevel; lvl++ {
		done := decodeAtLevel(t, hopeless, lvl)
		if tk := done[100]; !errors.Is(tk.Err, phy.ErrCRC) {
			t.Fatalf("level %v: hopeless block returned %v, want CRC failure", lvl, tk.Err)
		}
	}
}

// TestNoDegradeBitIdentical is the level-0 regression gate: a pool with the
// ladder compiled out (Config.NoDegrade) and a ladder pool held at level 0
// produce bit-identical decodes — same payloads, same errors, same iteration
// counts. The ladder's mere presence must cost nothing in fidelity.
func TestNoDegradeBitIdentical(t *testing.T) {
	work := frame.SubframeWork{
		Cell: 1, TTI: 7,
		Allocations: []frame.Allocation{
			{RNTI: 10, FirstPRB: 0, NumPRB: 3, MCS: 8, SNRdB: phy.MCS(8).OperatingSNR() + 4},
			{RNTI: 11, FirstPRB: 3, NumPRB: 2, MCS: 14, SNRdB: phy.MCS(14).OperatingSNR() - 1},
			{RNTI: 12, FirstPRB: 5, NumPRB: 1, MCS: 20, SNRdB: phy.MCS(20).OperatingSNR() - 15},
		},
	}
	run := func(cfg Config) map[frame.RNTI]*Task {
		pool := testPool(t, cfg)
		out := make(map[frame.RNTI]*Task)
		for _, tk := range endToEnd(t, pool, work) {
			out[tk.Alloc.RNTI] = tk
		}
		return out
	}
	frozen := run(Config{Workers: 1, Policy: EDF, DeadlineScale: 1000, NoDegrade: true})
	ladder := run(Config{Workers: 1, Policy: EDF, DeadlineScale: 1000})
	if len(frozen) != len(ladder) {
		t.Fatalf("task counts differ: %d vs %d", len(frozen), len(ladder))
	}
	for rnti, f := range frozen {
		l := ladder[rnti]
		if l == nil {
			t.Fatalf("rnti %d missing from ladder pool", rnti)
		}
		if (f.Err == nil) != (l.Err == nil) || (f.Err != nil && f.Err.Error() != l.Err.Error()) {
			t.Fatalf("rnti %d: errors differ: %v vs %v", rnti, f.Err, l.Err)
		}
		if !bytes.Equal(f.Payload, l.Payload) {
			t.Fatalf("rnti %d: payloads differ between NoDegrade and level-0 ladder", rnti)
		}
		if f.TurboIterations != l.TurboIterations {
			t.Fatalf("rnti %d: iterations differ: %d vs %d", rnti, f.TurboIterations, l.TurboIterations)
		}
	}
}

// TestShedHARQSkipsSoftState checks the deepest rung's shed: at level 3 the
// ingest path attaches no soft-combining buffer, so the cell accumulates no
// HARQ state; dropping back to level 0 restores combining.
func TestShedHARQSkipsSoftState(t *testing.T) {
	pool := testPool(t, Config{Workers: 1, Policy: EDF, DeadlineScale: 1000})
	cfg := testCellConfig()
	rrh, _ := NewRRHEmulator(cfg, 5)
	cp, _ := NewCellProcessor(cfg, pool)
	work := frame.SubframeWork{
		Cell: 1, TTI: 4,
		Allocations: []frame.Allocation{
			{RNTI: 9, FirstPRB: 0, NumPRB: 4, MCS: 10, HARQProcess: 1, SNRdB: phy.MCS(10).OperatingSNR() + 3},
		},
	}
	payloads, _ := rrh.RandomPayloads(work)
	ingest := func(tti frame.TTI) {
		w := work
		w.TTI = tti
		samples, err := rrh.Emit(w, payloads)
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan *Task, 1)
		if err := cp.IngestSubframe(samples, w, func(tk *Task) { ch <- tk }); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	if err := pool.SetCellLevel(1, cluster.DegradeShedHARQ); err != nil {
		t.Fatal(err)
	}
	ingest(4)
	if n := cp.HARQ().Processes(); n != 0 {
		t.Fatalf("shed rung still tracked %d HARQ processes", n)
	}
	if err := pool.SetCellLevel(1, cluster.DegradeNone); err != nil {
		t.Fatal(err)
	}
	ingest(12)
	if cp.HARQ().Processes() == 0 {
		t.Fatal("combining not restored after dropping to level 0")
	}
}

func TestDegradeLevelAccessors(t *testing.T) {
	frozen := testPool(t, Config{Workers: 1, DeadlineScale: 1, NoDegrade: true})
	if frozen.CellLevel(1) != cluster.DegradeNone || frozen.CellLevels() != nil || frozen.DegradeTarget() != cluster.DegradeNone {
		t.Fatal("NoDegrade pool not pinned at level 0")
	}
	if err := frozen.SetCellLevel(1, cluster.DegradeIterCap); err == nil {
		t.Fatal("SetCellLevel accepted on a NoDegrade pool")
	}
	pool := testPool(t, Config{Workers: 1, DeadlineScale: 1})
	if err := pool.SetCellLevel(1, cluster.MaxDegradationLevel+1); err == nil {
		t.Fatal("invalid level accepted")
	}
	if err := pool.SetCellLevel(2, cluster.DegradeForceI16); err != nil {
		t.Fatal(err)
	}
	if pool.CellLevel(2) != cluster.DegradeForceI16 {
		t.Fatal("pinned level not read back")
	}
	if lv := pool.CellLevels(); len(lv) != 1 || lv[2] != cluster.DegradeForceI16 {
		t.Fatalf("snapshot %v", lv)
	}
}

// TestHeadroomControllerHysteresis drives the controller's step() directly:
// thin slack climbs the ladder one rung per dwell window, fat slack with an
// empty queue walks it back down, and a fresh cell inherits the pool-wide
// target.
func TestHeadroomControllerHysteresis(t *testing.T) {
	// Alpha 1 makes the EWMAs track each period's sample exactly, so the
	// test controls the signals without modelling the smoothing.
	pool := testPool(t, Config{
		Workers: 1, DeadlineScale: 1000,
		Degrade: DegradeConfig{Alpha: 1, DwellPeriods: 1},
	})
	d := pool.deg
	budget := pool.cfg.Budget()
	feed := func(slackFrac float64) {
		d.slackNanos.Store(int64(slackFrac * float64(budget)))
		d.slackCount.Store(1)
		d.step()
	}

	// Idle pool: full slack, empty queue — stays at full service.
	for i := 0; i < 3; i++ {
		feed(1.0)
	}
	if got := pool.DegradeTarget(); got != cluster.DegradeNone {
		t.Fatalf("idle pool degraded to %v", got)
	}

	// Thin slack: one rung per transition, with a dwell period between.
	feed(0.0)
	if got := pool.DegradeTarget(); got != cluster.DegradeIterCap {
		t.Fatalf("after thin slack: %v", got)
	}
	feed(0.0) // dwell period — no move
	if got := pool.DegradeTarget(); got != cluster.DegradeIterCap {
		t.Fatalf("dwell not honoured: %v", got)
	}
	feed(0.0)
	if got := pool.DegradeTarget(); got != cluster.DegradeForceI16 {
		t.Fatalf("second raise missing: %v", got)
	}
	for i := 0; i < 6; i++ {
		feed(0.0)
	}
	if got := pool.DegradeTarget(); got != cluster.MaxDegradationLevel {
		t.Fatalf("ladder topped out at %v", got)
	}

	// A cell first seen now inherits the pool-wide target.
	if got := pool.CellLevel(42); got != cluster.MaxDegradationLevel {
		t.Fatalf("new cell at %v, want target", got)
	}

	// Recovery: fat slack and an empty queue walk back down rung by rung.
	for i := 0; i < 10 && pool.DegradeTarget() != cluster.DegradeNone; i++ {
		feed(1.0)
	}
	if got := pool.DegradeTarget(); got != cluster.DegradeNone {
		t.Fatalf("never recovered: %v", got)
	}
	if got := pool.CellLevel(42); got != cluster.DegradeNone {
		t.Fatalf("cell 42 left behind at %v", got)
	}
}

// TestHeadroomControllerMaxLevel pins the automatic controller to its
// configured ceiling (manual pins are unbounded).
func TestHeadroomControllerMaxLevel(t *testing.T) {
	pool := testPool(t, Config{
		Workers: 1, DeadlineScale: 1000,
		Degrade: DegradeConfig{Alpha: 1, DwellPeriods: 1, MaxLevel: cluster.DegradeIterCap},
	})
	d := pool.deg
	for i := 0; i < 8; i++ {
		d.slackNanos.Store(0)
		d.slackCount.Store(1)
		d.step()
	}
	if got := pool.DegradeTarget(); got != cluster.DegradeIterCap {
		t.Fatalf("controller exceeded MaxLevel: %v", got)
	}
	if err := pool.SetCellLevel(1, cluster.DegradeShedHARQ); err != nil {
		t.Fatal(err)
	}
	if got := pool.CellLevel(1); got != cluster.DegradeShedHARQ {
		t.Fatalf("manual pin bounded by MaxLevel: %v", got)
	}
}
