package dataplane

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pran/internal/cluster"
	"pran/internal/frame"
	"pran/internal/telemetry"
)

// Default headroom-controller parameters, applied to zero DegradeConfig
// fields. Depths are queued tasks per worker; slacks are fractions of the
// task budget remaining at completion.
const (
	// DefaultDegradeAlpha is the EWMA smoothing factor for the headroom
	// signals.
	DefaultDegradeAlpha = 0.3
	// DefaultDegradeRaiseDepth raises the level when the smoothed queue
	// depth exceeds this many waiting tasks per worker.
	DefaultDegradeRaiseDepth = 3.0
	// DefaultDegradeLowerDepth is the queue-depth bar for lowering.
	DefaultDegradeLowerDepth = 0.5
	// DefaultDegradeRaiseSlack raises the level when tasks finish with less
	// than this fraction of their budget left on average.
	DefaultDegradeRaiseSlack = 0.1
	// DefaultDegradeLowerSlack is the slack bar for lowering.
	DefaultDegradeLowerSlack = 0.35
	// DefaultDegradeDwell is the number of controller periods a transition
	// holds before the next one is considered.
	DefaultDegradeDwell = 2
)

// DegradeConfig parameterizes the pool's compute-aware degradation ladder
// (see cluster.DegradationLevel for what each rung sheds). The ladder's
// per-cell level words always exist on a pool unless Config.NoDegrade is
// set — SetCellLevel works regardless — but the automatic headroom
// controller only runs when Enable is true.
//
// The controller is a deliberately simple hysteresis loop: every Period it
// folds the pool's queue depth and the completed tasks' deadline slack into
// EWMAs, raises the level one rung when either signal says the pool is out
// of headroom (deep queue OR thin slack), and lowers one rung only when
// both say it is comfortable (shallow queue AND fat slack). DwellPeriods of
// quiet follow every transition so the loop cannot flap faster than the
// signals settle.
type DegradeConfig struct {
	// Enable starts the automatic headroom controller. Without it the
	// ladder is manual-only (Pool.SetCellLevel).
	Enable bool
	// MaxLevel bounds how deep the automatic controller degrades
	// (0 means cluster.MaxDegradationLevel). Manual SetCellLevel is not
	// bounded by it.
	MaxLevel cluster.DegradationLevel
	// Period is the controller's sampling interval; 0 means half the
	// pool's scaled task budget (Config.Budget()/2), tracking the
	// deadline scale so the loop reacts within a few task lifetimes at
	// any calibration.
	Period time.Duration
	// Alpha is the EWMA smoothing factor in (0, 1]; 0 means
	// DefaultDegradeAlpha.
	Alpha float64
	// RaiseDepth / LowerDepth are the queue-depth thresholds in waiting
	// tasks per worker; 0 means the defaults above.
	RaiseDepth, LowerDepth float64
	// RaiseSlack / LowerSlack are the completion-slack thresholds as
	// fractions of the task budget. Zero values mean the defaults above
	// (a genuinely zero RaiseSlack — raise only when tasks finish past
	// deadline — is expressible as a tiny negative value).
	RaiseSlack, LowerSlack float64
	// DwellPeriods is the post-transition hold, in controller periods;
	// 0 means DefaultDegradeDwell.
	DwellPeriods int
}

// withDefaults returns the config with zero fields replaced by defaults.
// budget is the pool's scaled task budget (for the period default).
func (c DegradeConfig) withDefaults(budget time.Duration) DegradeConfig {
	if c.MaxLevel == 0 {
		c.MaxLevel = cluster.MaxDegradationLevel
	}
	if c.Period == 0 {
		c.Period = budget / 2
	}
	if c.Period < 100*time.Microsecond {
		c.Period = 100 * time.Microsecond
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultDegradeAlpha
	}
	if c.RaiseDepth == 0 {
		c.RaiseDepth = DefaultDegradeRaiseDepth
	}
	if c.LowerDepth == 0 {
		c.LowerDepth = DefaultDegradeLowerDepth
	}
	if c.RaiseSlack == 0 {
		c.RaiseSlack = DefaultDegradeRaiseSlack
	}
	if c.LowerSlack == 0 {
		c.LowerSlack = DefaultDegradeLowerSlack
	}
	if c.DwellPeriods == 0 {
		c.DwellPeriods = DefaultDegradeDwell
	}
	return c
}

// validate checks the raw configuration.
func (c DegradeConfig) validate() error {
	if err := c.MaxLevel.Validate(); err != nil {
		return fmt.Errorf("dataplane: degrade max level: %w", err)
	}
	if c.Period < 0 {
		return fmt.Errorf("dataplane: negative degrade period %v: %w", c.Period, errBadDegrade)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("dataplane: degrade EWMA alpha %v outside (0, 1]: %w", c.Alpha, errBadDegrade)
	}
	if c.RaiseDepth < 0 || c.LowerDepth < 0 {
		return fmt.Errorf("dataplane: negative degrade depth threshold: %w", errBadDegrade)
	}
	if c.DwellPeriods < 0 {
		return fmt.Errorf("dataplane: negative degrade dwell %d: %w", c.DwellPeriods, errBadDegrade)
	}
	d := c.withDefaults(HARQBudget)
	if d.LowerDepth >= d.RaiseDepth {
		return fmt.Errorf("dataplane: degrade lower depth %v not below raise depth %v: %w", d.LowerDepth, d.RaiseDepth, errBadDegrade)
	}
	if d.LowerSlack <= d.RaiseSlack {
		return fmt.Errorf("dataplane: degrade lower slack %v not above raise slack %v: %w", d.LowerSlack, d.RaiseSlack, errBadDegrade)
	}
	return nil
}

// errBadDegrade marks invalid degradation configurations.
var errBadDegrade = fmt.Errorf("invalid degradation config")

// degradeState is the pool's degradation ladder: per-cell level words plus
// the optional headroom-controller goroutine.
//
// Ownership: each cell's level lives in one atomic word. The controller
// goroutine (or any SetCellLevel caller) writes it; the driver goroutine
// (Submit's task stamping, the cell ingest HARQ-shed decision) reads it
// with atomic loads. Workers never touch the words — they see the level
// frozen into Task.Degrade at submission, so a mid-queue transition never
// splits a task's own decode decisions. The registry map itself is guarded
// by mu (registration is rare: once per cell).
type degradeState struct {
	cfg  DegradeConfig
	pool *Pool

	mu     sync.RWMutex
	cells  map[frame.CellID]*atomic.Int32
	gauges map[frame.CellID]*telemetry.Gauge
	// target is the automatic controller's current pool-wide level; newly
	// registered cells inherit it.
	target atomic.Int32

	// Completion-slack accumulator, fed by Pool.finish on the worker
	// goroutines and drained (Swap 0) by the controller each period.
	slackNanos atomic.Int64
	slackCount atomic.Int64

	// Controller-goroutine-local state.
	ewmaDepth float64
	ewmaSlack float64
	dwell     int

	// Telemetry handles (nil when the pool's telemetry is off).
	levelGauge *telemetry.Gauge
	raises     *telemetry.Counter
	lowers     *telemetry.Counter
	telShard   int

	stop chan struct{}
	done chan struct{}
}

// newDegradeState builds the ladder for a pool (cfg already validated).
func newDegradeState(p *Pool) *degradeState {
	d := &degradeState{
		cfg:       p.cfg.Degrade.withDefaults(p.cfg.Budget()),
		pool:      p,
		cells:     make(map[frame.CellID]*atomic.Int32),
		gauges:    make(map[frame.CellID]*telemetry.Gauge),
		ewmaSlack: 1, // start from "full headroom" so an idle pool never raises
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if tel := p.tel; tel != nil {
		d.levelGauge = tel.reg.Gauge(MetricDegradeLevel)
		d.raises = tel.reg.Counter(MetricDegradeRaises)
		d.lowers = tel.reg.Counter(MetricDegradeLowers)
		d.telShard = tel.driverShard
	}
	return d
}

// level returns cell's current ladder level, registering the cell on first
// sight (new cells inherit the controller's pool-wide target).
func (d *degradeState) level(cell frame.CellID) cluster.DegradationLevel {
	d.mu.RLock()
	w := d.cells[cell]
	d.mu.RUnlock()
	if w == nil {
		w = d.register(cell)
	}
	return cluster.DegradationLevel(w.Load()).Clamp()
}

// register creates (or returns) cell's level word.
func (d *degradeState) register(cell frame.CellID) *atomic.Int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w, ok := d.cells[cell]; ok {
		return w
	}
	w := new(atomic.Int32)
	w.Store(d.target.Load())
	d.cells[cell] = w
	if tel := d.pool.tel; tel != nil {
		g := tel.reg.Gauge(CellMetricDegradeLevel(cell))
		g.Set(int64(w.Load()))
		d.gauges[cell] = g
	}
	return w
}

// set stores a level for one cell (registering it if needed) and mirrors it
// to the cell's gauge.
func (d *degradeState) set(cell frame.CellID, lvl cluster.DegradationLevel) {
	lvl = lvl.Clamp()
	w := d.register(cell)
	w.Store(int32(lvl))
	d.mu.RLock()
	g := d.gauges[cell]
	d.mu.RUnlock()
	if g != nil {
		g.Set(int64(lvl))
	}
}

// setAll moves every registered cell (and the pool-wide target) to lvl.
func (d *degradeState) setAll(lvl cluster.DegradationLevel) {
	lvl = lvl.Clamp()
	d.target.Store(int32(lvl))
	if d.levelGauge != nil {
		d.levelGauge.Set(int64(lvl))
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for cell, w := range d.cells {
		w.Store(int32(lvl))
		if g := d.gauges[cell]; g != nil {
			g.Set(int64(lvl))
		}
	}
}

// snapshot returns the registered cells' current levels.
func (d *degradeState) snapshot() map[frame.CellID]cluster.DegradationLevel {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[frame.CellID]cluster.DegradationLevel, len(d.cells))
	for cell, w := range d.cells {
		out[cell] = cluster.DegradationLevel(w.Load()).Clamp()
	}
	return out
}

// observe folds one finished task's deadline slack into the accumulator.
// Called from Pool.finish on worker goroutines; two atomic adds.
func (d *degradeState) observe(t *Task) {
	d.slackNanos.Add(int64(t.Deadline.Sub(t.Finished)))
	d.slackCount.Add(1)
}

// run is the headroom controller loop (started by NewPool when
// DegradeConfig.Enable is set; stopped by Pool.Close).
func (d *degradeState) run() {
	defer close(d.done)
	tick := time.NewTicker(d.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			d.step()
		}
	}
}

// step runs one controller period: sample, smooth, and possibly move one
// rung. Split from run for testability.
func (d *degradeState) step() {
	a := d.cfg.Alpha
	depth := float64(d.pool.QueueLen()) / float64(d.pool.cfg.Workers)
	d.ewmaDepth = a*depth + (1-a)*d.ewmaDepth
	if n := d.slackCount.Swap(0); n > 0 {
		slack := float64(d.slackNanos.Swap(0)) / float64(n) / float64(d.pool.cfg.Budget())
		d.ewmaSlack = a*slack + (1-a)*d.ewmaSlack
	} else {
		d.slackNanos.Store(0)
		// No completions this period: decay slack toward "plenty" only if
		// the queue is also empty (an empty idle pool has headroom; a full
		// pool with no completions is the opposite).
		if depth == 0 {
			d.ewmaSlack = a*1 + (1-a)*d.ewmaSlack
		}
	}
	if d.dwell > 0 {
		d.dwell--
		return
	}
	cur := cluster.DegradationLevel(d.target.Load())
	switch {
	case (d.ewmaDepth > d.cfg.RaiseDepth || d.ewmaSlack < d.cfg.RaiseSlack) && cur < d.cfg.MaxLevel:
		d.setAll(cur + 1)
		if d.raises != nil {
			d.raises.Inc(d.telShard)
		}
		d.dwell = d.cfg.DwellPeriods
	case d.ewmaDepth < d.cfg.LowerDepth && d.ewmaSlack > d.cfg.LowerSlack && cur > cluster.DegradeNone:
		d.setAll(cur - 1)
		if d.lowers != nil {
			d.lowers.Inc(d.telShard)
		}
		d.dwell = d.cfg.DwellPeriods
	}
}

// CellLevel returns the cell's current degradation level (DegradeNone on a
// NoDegrade pool). Safe from any goroutine.
func (p *Pool) CellLevel(cell frame.CellID) cluster.DegradationLevel {
	if p.deg == nil {
		return cluster.DegradeNone
	}
	return p.deg.level(cell)
}

// SetCellLevel pins one cell's degradation level — the manual/controller-
// driven path (the cluster controller uses it to run a hot cell degraded
// rather than shed it). On a NoDegrade pool it returns an error; with the
// automatic headroom controller enabled the pin lasts until the
// controller's next transition. Safe from any goroutine; tasks already
// queued keep the level they were stamped with.
func (p *Pool) SetCellLevel(cell frame.CellID, lvl cluster.DegradationLevel) error {
	if err := lvl.Validate(); err != nil {
		return err
	}
	if p.deg == nil {
		return fmt.Errorf("dataplane: degradation disabled on this pool: %w", errBadDegrade)
	}
	p.deg.set(cell, lvl)
	return nil
}

// CellLevels returns a snapshot of every registered cell's degradation
// level (nil on a NoDegrade pool).
func (p *Pool) CellLevels() map[frame.CellID]cluster.DegradationLevel {
	if p.deg == nil {
		return nil
	}
	return p.deg.snapshot()
}

// DegradeTarget returns the automatic controller's current pool-wide level.
func (p *Pool) DegradeTarget() cluster.DegradationLevel {
	if p.deg == nil {
		return cluster.DegradeNone
	}
	return cluster.DegradationLevel(p.deg.target.Load()).Clamp()
}
