package dataplane

import (
	"errors"
	"sync"
	"time"

	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
	"pran/internal/telemetry"
)

func TestEndToEndCrossTaskBatching(t *testing.T) {
	// Five same-shape allocations plus one odd one out, with the single
	// worker stalled on its first task so the rest pile up in the queue:
	// the worker's next claim must batch the queued same-shape tasks into
	// one joint decode. endToEnd verifies every payload against the
	// transmitted ground truth, and the telemetry must show a full flush.
	reg := telemetry.New(4)
	var stall sync.Once
	pool := testPool(t, Config{
		Workers: 1, DecodeWorkers: 2,
		DecodeKernel: phy.KernelInt16, DecodeBatch: 8, BatchTasks: 4,
		Policy: EDF, DeadlineScale: 1000, Telemetry: reg,
		FaultHook: func(worker int) error {
			stall.Do(func() { time.Sleep(20 * time.Millisecond) })
			return nil
		},
	})
	same := frame.Allocation{NumPRB: 1, MCS: 14, SNRdB: phy.MCS(14).OperatingSNR() + 4}
	work := frame.SubframeWork{Cell: 1, TTI: 42}
	for i := 0; i < 5; i++ {
		a := same
		a.RNTI = frame.RNTI(100 + i)
		a.FirstPRB = i
		work.Allocations = append(work.Allocations, a)
	}
	work.Allocations = append(work.Allocations, frame.Allocation{
		RNTI: 200, FirstPRB: 5, NumPRB: 1, MCS: 6, SNRdB: phy.MCS(6).OperatingSNR() + 4,
	})
	done := endToEnd(t, pool, work)
	if len(done) != 6 {
		t.Fatalf("%d tasks done", len(done))
	}
	for _, tk := range done {
		if tk.Err != nil {
			t.Fatalf("rnti %d: %v", tk.Alloc.RNTI, tk.Err)
		}
		if tk.TurboIterations < 1 {
			t.Fatalf("rnti %d: iterations not recorded", tk.Alloc.RNTI)
		}
	}
	snap := reg.Snapshot()
	hist, ok := snap.Histogram(MetricBatchWidth)
	if !ok || hist.State.Count == 0 {
		t.Fatal("batch width histogram not recorded")
	}
	full := snap.Counter(MetricBatchFlushFull)
	ragged := snap.Counter(MetricBatchFlushRagged)
	if full < 1 {
		t.Fatalf("expected at least one full flush (full=%d ragged=%d)", full, ragged)
	}
	if full+ragged != hist.State.Count {
		t.Fatalf("flush counters %d+%d disagree with %d width observations", full, ragged, hist.State.Count)
	}
}

func TestCrossTaskBatchingManySubframes(t *testing.T) {
	// Race-detector target for the batched composition: several workers
	// with joint decoders and lockstep kernels chewing a stream of
	// subframes whose allocations mostly share one shape.
	pool := testPool(t, Config{
		Workers: 2, DecodeWorkers: 2,
		DecodeKernel: phy.KernelInt16, DecodeBatch: 8, BatchTasks: 3,
		Policy: EDF, DeadlineScale: 1000,
	})
	subframes := 5
	if testing.Short() {
		subframes = 2
	}
	for s := 0; s < subframes; s++ {
		work := frame.SubframeWork{Cell: 1, TTI: frame.TTI(s)}
		for i := 0; i < 4; i++ {
			work.Allocations = append(work.Allocations, frame.Allocation{
				RNTI: frame.RNTI(100 + i), FirstPRB: i, NumPRB: 1, MCS: 12,
				SNRdB: phy.MCS(12).OperatingSNR() + 4,
			})
		}
		done := endToEnd(t, pool, work)
		for _, tk := range done {
			if tk.Err != nil {
				t.Fatalf("subframe %d rnti %d: %v", s, tk.Alloc.RNTI, tk.Err)
			}
		}
	}
}

func TestBatchingNaiveAlloc(t *testing.T) {
	// The GC-pressure ablation composes with batching: fresh per-slot
	// processors are built for each joint dispatch and closed after it.
	pool := testPool(t, Config{
		Workers: 1, DecodeKernel: phy.KernelInt16, DecodeBatch: 4, BatchTasks: 2,
		Policy: EDF, DeadlineScale: 1000, NaiveAlloc: true,
	})
	work := frame.SubframeWork{
		Cell: 1, TTI: 9,
		Allocations: []frame.Allocation{
			{RNTI: 100, FirstPRB: 0, NumPRB: 3, MCS: 10, SNRdB: phy.MCS(10).OperatingSNR() + 4},
			{RNTI: 101, FirstPRB: 3, NumPRB: 3, MCS: 10, SNRdB: phy.MCS(10).OperatingSNR() + 4},
		},
	}
	done := endToEnd(t, pool, work)
	if len(done) != 2 {
		t.Fatalf("%d tasks done", len(done))
	}
	for _, tk := range done {
		if tk.Err != nil {
			t.Fatalf("rnti %d: %v", tk.Alloc.RNTI, tk.Err)
		}
	}
}

func TestTakeMatchGroupsSameShape(t *testing.T) {
	q := taskQueue{}
	now := time.Now()
	mk := func(rnti int, mcs phy.MCS, nprb int, dl time.Duration) *Task {
		return &Task{Deadline: now.Add(dl), Alloc: frame.Allocation{RNTI: frame.RNTI(rnti), MCS: mcs, NumPRB: nprb}}
	}
	a := mk(1, 14, 4, 1*time.Millisecond)
	b := mk(2, 6, 4, 2*time.Millisecond)  // different MCS
	c := mk(3, 14, 2, 3*time.Millisecond) // different width
	d := mk(4, 14, 4, 4*time.Millisecond) // match, queued before e
	e := mk(5, 14, 4, 5*time.Millisecond) // match
	dl := mk(6, 14, 4, 6*time.Millisecond)
	dl.runInstead = func(w *worker, t *Task) {} // custom work never joins
	for _, tk := range []*Task{a, b, c, d, e, dl} {
		q.push(tk)
	}
	lead := q.pop()
	if lead != a {
		t.Fatalf("EDF pop = rnti %d, want 1", lead.Alloc.RNTI)
	}
	if m := q.takeMatch(lead); m != d {
		t.Fatalf("first match rnti %v, want 4", m.Alloc.RNTI)
	}
	if m := q.takeMatch(lead); m != e {
		t.Fatalf("second match rnti %v, want 5", m.Alloc.RNTI)
	}
	if m := q.takeMatch(lead); m != nil {
		t.Fatalf("unexpected third match rnti %v", m.Alloc.RNTI)
	}
	if q.Len() != 3 {
		t.Fatalf("queue len %d, want 3", q.Len())
	}
	// The heap must still pop in deadline order after the removals.
	if q.pop() != b || q.pop() != c || q.pop() != dl {
		t.Fatal("heap order broken after takeMatch removals")
	}
}

func TestConfigBatchValidation(t *testing.T) {
	base := Config{Workers: 1, DeadlineScale: 1}
	cfg := base
	cfg.DecodeBatch = -1
	if err := cfg.Validate(); !errors.Is(err, phy.ErrBadParameter) {
		t.Fatal("negative DecodeBatch accepted")
	}
	cfg = base
	cfg.DecodeBatch = 8 // float32 kernel (zero value) cannot batch
	if err := cfg.Validate(); !errors.Is(err, phy.ErrBadParameter) {
		t.Fatal("float32 batched decode accepted")
	}
	cfg = base
	cfg.BatchTasks = -1
	if err := cfg.Validate(); !errors.Is(err, phy.ErrBadParameter) {
		t.Fatal("negative BatchTasks accepted")
	}
	cfg = base
	cfg.BatchTasks = 2
	cfg.FrontEnd = phy.FrontEndStaged
	if err := cfg.Validate(); !errors.Is(err, phy.ErrBadParameter) {
		t.Fatal("staged front-end with cross-task batching accepted")
	}
	cfg = base
	cfg.DecodeKernel = phy.KernelInt16
	cfg.DecodeBatch = 8
	cfg.BatchTasks = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid batched config rejected: %v", err)
	}
}
