// Package core assembles the PRAN system: RRH emulators feeding cell ingest
// paths, the shared worker pool running the real uplink DSP, the RAN-program
// registry rewriting schedules, and the controller observing demand and
// scaling/placing the pool. It is the library facade the examples and
// command-line tools build on; everything underneath remains individually
// usable.
//
// Concurrency: a System is driven by one goroutine calling Tick; the
// dataplane pool it owns runs its own worker goroutines (plus optional
// per-task decode helpers, see internal/phy.ParallelDecoder), and results
// are joined back into the Tick goroutine before observations and control
// steps run. Only Tick's caller may touch the System; everything the pool
// touches crosses via the pool's channels.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pran/internal/cluster"
	"pran/internal/controller"
	"pran/internal/dataplane"
	"pran/internal/frame"
	"pran/internal/phy"
	"pran/internal/ranapi"
	"pran/internal/traffic"
)

// CellSpec pairs a cell's radio configuration with its workload profile.
type CellSpec struct {
	// Config is the radio configuration.
	Config frame.CellConfig
	// Profile is the traffic profile.
	Profile traffic.CellProfile
}

// ClusterSpec sizes the simulated server pool the controller manages.
type ClusterSpec struct {
	// Servers is the total pool size; Active of them start active.
	Servers, Active int
	// CoresPerServer and Speed describe each (homogeneous) server.
	CoresPerServer int
	Speed          float64
}

// Config assembles a System.
type Config struct {
	// Cells lists the cells to run. All must share one bandwidth.
	Cells []CellSpec
	// Pool configures the worker pool (measured-mode data plane).
	Pool dataplane.Config
	// Controller configures the control plane.
	Controller controller.Config
	// Cluster sizes the managed pool.
	Cluster ClusterSpec
	// CostModel attributes compute demand; zero value selects
	// cluster.DefaultCostModel.
	CostModel cluster.CostModel
	// Seed makes runs reproducible.
	Seed int64
	// StartHour is the time-of-day at TTI 0.
	StartHour float64
	// ControlPeriodTTIs is the controller step cadence (default 100).
	ControlPeriodTTIs int
	// Realtime paces RunTTIs so each subframe occupies DeadlineScale × 1 ms
	// of wall-clock time, matching the deadline budget the pool enforces.
	// Without it the run floods the pool as fast as signals can be
	// synthesized (useful for throughput tests, meaningless for deadline
	// measurements).
	Realtime bool
}

// System is a running PRAN instance.
type System struct {
	cfg      Config
	model    cluster.CostModel
	gen      *traffic.Generator
	rrhs     []*dataplane.RRHEmulator
	cells    []*dataplane.CellProcessor
	pool     *dataplane.Pool
	ctl      *controller.Controller
	registry *ranapi.Registry

	tti        frame.TTI
	cellDemand []float64 // per-cell demand accumulated this control period
	demandTTIs int
	harq       []*harqLoop // per-cell HARQ retransmission loops

	// mcsCap is the auto-registered scheduler-feedback program (nil when
	// the pool runs NoDegrade): every control period it receives each
	// cell's degradation-ladder MCS cap, so a degraded cell's future
	// subframes arrive with cheaper transport blocks.
	mcsCap *ranapi.MCSCapProgram
	// ctlLevels is the controller's last pushed per-cell level set, kept
	// to reset cells the controller stops degrading.
	ctlLevels map[frame.CellID]cluster.DegradationLevel

	closed bool
}

// New validates the configuration and builds the system.
func New(cfg Config) (*System, error) {
	if len(cfg.Cells) == 0 {
		return nil, fmt.Errorf("core: no cells: %w", phy.ErrBadParameter)
	}
	bw := cfg.Cells[0].Config.Bandwidth
	profiles := make([]traffic.CellProfile, len(cfg.Cells))
	for i, c := range cfg.Cells {
		if err := c.Config.Validate(); err != nil {
			return nil, err
		}
		if c.Config.Bandwidth != bw {
			return nil, fmt.Errorf("core: cell %d bandwidth differs: %w", c.Config.ID, phy.ErrBadParameter)
		}
		if err := c.Profile.Validate(); err != nil {
			return nil, err
		}
		profiles[i] = c.Profile
	}
	if cfg.ControlPeriodTTIs <= 0 {
		cfg.ControlPeriodTTIs = 100
	}
	model := cfg.CostModel
	if model.Validate() != nil {
		model = cluster.DefaultCostModel()
	}

	gen, err := traffic.NewGenerator(bw, profiles, cfg.Seed, cfg.StartHour)
	if err != nil {
		return nil, err
	}
	pool, err := dataplane.NewPool(cfg.Pool)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.Uniform(cfg.Cluster.Servers, cfg.Cluster.Active, cfg.Cluster.CoresPerServer, cfg.Cluster.Speed)
	if err != nil {
		_ = pool.Close()
		return nil, err
	}
	ctl, err := controller.New(cfg.Controller, cl)
	if err != nil {
		_ = pool.Close()
		return nil, err
	}

	s := &System{
		cfg:        cfg,
		model:      model,
		gen:        gen,
		pool:       pool,
		ctl:        ctl,
		registry:   ranapi.NewRegistry(),
		cellDemand: make([]float64, len(cfg.Cells)),
		ctlLevels:  make(map[frame.CellID]cluster.DegradationLevel),
	}
	if !cfg.Pool.NoDegrade {
		s.mcsCap = ranapi.NewMCSCapProgram()
		if err := s.registry.Register(s.mcsCap); err != nil {
			_ = pool.Close()
			return nil, err
		}
	}
	for i, c := range cfg.Cells {
		rrh, err := dataplane.NewRRHEmulator(c.Config, cfg.Seed+int64(i)*131)
		if err != nil {
			_ = pool.Close()
			return nil, err
		}
		cp, err := dataplane.NewCellProcessor(c.Config, pool)
		if err != nil {
			_ = pool.Close()
			return nil, err
		}
		s.rrhs = append(s.rrhs, rrh)
		s.cells = append(s.cells, cp)
		s.harq = append(s.harq, newHARQLoop())
	}
	return s, nil
}

// Programs exposes the RAN-program registry.
func (s *System) Programs() *ranapi.Registry { return s.registry }

// Controller exposes the control plane.
func (s *System) Controller() *controller.Controller { return s.ctl }

// Pool exposes the data-plane worker pool.
func (s *System) Pool() *dataplane.Pool { return s.pool }

// CostModel returns the demand-attribution model in use.
func (s *System) CostModel() cluster.CostModel { return s.model }

// TTI returns the current subframe counter.
func (s *System) TTI() frame.TTI { return s.tti }

// NumCells returns the cell count.
func (s *System) NumCells() int { return len(s.cells) }

// RunTTIs advances the system n subframes in measured mode: per cell it
// generates the schedule, applies RAN programs, synthesizes the uplink
// signal, and ingests it into the pool; the controller steps every
// ControlPeriodTTIs with the cost model's demand attribution.
func (s *System) RunTTIs(n int) error {
	if s.closed {
		return errors.New("core: system closed")
	}
	ttiWall := time.Duration(float64(time.Millisecond) * s.cfg.Pool.DeadlineScale)
	next := time.Now()
	for i := 0; i < n; i++ {
		if s.cfg.Realtime {
			if now := time.Now(); next.After(now) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(ttiWall)
		}
		for ci := range s.cells {
			work, err := s.gen.Subframe(ci, s.tti)
			if err != nil {
				return err
			}
			work = s.registry.Apply(work)
			if err := work.Validate(s.cfg.Cells[ci].Config.Bandwidth); err != nil {
				return fmt.Errorf("core: RAN program produced invalid work: %w", err)
			}
			// HARQ: due retransmissions preempt fresh traffic on their PRBs.
			loop := s.harq[ci]
			overrides := loop.inject(&work)
			payloads, err := s.rrhs[ci].RandomPayloads(work)
			if err != nil {
				return err
			}
			for idx, tb := range overrides {
				payloads[idx] = tb
			}
			samples, err := s.rrhs[ci].Emit(work, payloads)
			if err != nil {
				return err
			}
			// Map each task back to its transmitted TB for the HARQ loop
			// (allocations are PRB-disjoint, so RNTI+FirstPRB is unique).
			type akey struct {
				rnti  frame.RNTI
				first int
			}
			byAlloc := make(map[akey][]byte, len(work.Allocations))
			for idx, a := range work.Allocations {
				byAlloc[akey{a.RNTI, a.FirstPRB}] = payloads[idx]
			}
			onDone := func(t *dataplane.Task) {
				loop.onTaskDone(t, byAlloc[akey{t.Alloc.RNTI, t.Alloc.FirstPRB}])
			}
			if err := s.cells[ci].IngestSubframe(samples, work, onDone); err != nil {
				return err
			}
			// Demand attribution and observation fan-out.
			cost := s.model.SubframeCost(work, s.cfg.Cells[ci].Config.Bandwidth, s.cfg.Cells[ci].Config.Antennas)
			demand := cluster.CoreFraction(cost)
			s.cellDemand[ci] += demand
			var snrSum float64
			for _, a := range work.Allocations {
				snrSum += a.SNRdB
			}
			obs := ranapi.Observation{
				Cell:        work.Cell,
				TTI:         work.TTI,
				UsedPRB:     work.UsedPRB(),
				NumUEs:      len(work.Allocations),
				DemandCores: demand,
			}
			if len(work.Allocations) > 0 {
				obs.AvgSNRdB = snrSum / float64(len(work.Allocations))
			}
			s.registry.Observe(obs)
		}
		s.demandTTIs++
		s.tti++
		if s.demandTTIs >= s.cfg.ControlPeriodTTIs {
			for ci := range s.cells {
				avg := s.cellDemand[ci] / float64(s.demandTTIs)
				s.ctl.ObserveCell(s.cfg.Cells[ci].Config.ID, avg)
				s.cellDemand[ci] = 0
			}
			s.demandTTIs = 0
			if _, err := s.ctl.Step(); err != nil {
				return err
			}
			s.syncDegradation()
		}
	}
	return nil
}

// MCSCaps exposes the auto-registered scheduler-feedback program (nil when
// the pool runs NoDegrade).
func (s *System) MCSCaps() *ranapi.MCSCapProgram { return s.mcsCap }

// syncDegradation runs after every control step: the controller's
// degradation-aware placement decisions flow down to the data-plane pool
// (per-cell levels), and each cell's effective level — whether set by the
// controller or by the pool's own headroom loop — flows back to the
// scheduler as an MCS cap. With no DegradePolicy on the controller the
// level map is always empty and only the cap feedback runs.
func (s *System) syncDegradation() {
	if s.pool.CellLevels() == nil {
		return // NoDegrade pool
	}
	levels := s.ctl.DegradationLevels()
	for cell, prev := range s.ctlLevels {
		if _, still := levels[cell]; !still && prev != cluster.DegradeNone {
			_ = s.pool.SetCellLevel(cell, cluster.DegradeNone)
		}
	}
	for cell, lvl := range levels {
		_ = s.pool.SetCellLevel(cell, lvl)
	}
	s.ctlLevels = levels
	if s.mcsCap != nil {
		for ci := range s.cells {
			id := s.cfg.Cells[ci].Config.ID
			s.mcsCap.SetCap(id, s.pool.CellLevel(id).MCSCap())
		}
	}
}

// Drain waits for all in-flight decode tasks to finish.
func (s *System) Drain() { s.pool.Drain() }

// Close shuts the data plane down. Safe to call twice.
func (s *System) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.pool.Close()
}

// DefaultCells builds n small cells with the standard class mix — the
// convenient starting point for examples and tests. bw must be a standard
// bandwidth; antennas applies to every cell.
func DefaultCells(n int, bw phy.Bandwidth, antennas int) []CellSpec {
	classes := traffic.StandardMix(n)
	out := make([]CellSpec, n)
	for i := range out {
		out[i] = CellSpec{
			Config: frame.CellConfig{
				ID:        frame.CellID(i),
				PCI:       uint16((i * 3) % 504),
				Bandwidth: bw,
				Antennas:  antennas,
			},
			Profile: traffic.DefaultProfile(classes[i]),
		}
	}
	return out
}

// HARQStatsTotal sums the per-cell HARQ retransmission statistics.
func (s *System) HARQStatsTotal() HARQStats {
	var total HARQStats
	for _, h := range s.harq {
		st := h.snapshot()
		total.FirstTxFailures += st.FirstTxFailures
		total.Retransmissions += st.Retransmissions
		total.Recovered += st.Recovered
		total.Exhausted += st.Exhausted
	}
	return total
}

// MeasuredMissRate is a convenience: run n TTIs and report the pool's task
// deadline-miss rate at the end (after draining).
func (s *System) MeasuredMissRate(n int) (float64, error) {
	if err := s.RunTTIs(n); err != nil {
		return 0, err
	}
	s.Drain()
	return s.pool.Stats().MissRate(), nil
}

// SuggestedDeadlineScale calibrates a deadline scale for the given
// bandwidth so measured-mode runs behave like the paper's optimized stack
// (see dataplane.CalibrateDeadlineScale). The scale is rounded up to avoid
// borderline flakiness across runs.
func SuggestedDeadlineScale(bw phy.Bandwidth) (float64, error) {
	s, err := dataplane.CalibrateDeadlineScale(bw, 16)
	if err != nil {
		return 0, err
	}
	return math.Ceil(s), nil
}

// CalibrateScale sizes Config.Pool.DeadlineScale against the *actual*
// workload: it runs a throwaway copy of the configuration unpaced for
// warmupTTIs subframes, measures the pool's real compute per TTI on this
// host, and returns the scale at which that load fills ~60% of the workers'
// scaled subframe budget — the compute-to-deadline ratio the paper's
// optimized stack ran at. This captures everything the single-decode
// calibration misses (per-UE overheads, iteration spread, cache warm-up).
func CalibrateScale(cfg Config, warmupTTIs int) (float64, error) {
	if warmupTTIs <= 0 {
		warmupTTIs = 100
	}
	trial := cfg
	trial.Realtime = false
	trial.Pool.DeadlineScale = 1e6 // never abandon during measurement
	trial.Pool.AbandonLate = false
	sys, err := New(trial)
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	if err := sys.RunTTIs(warmupTTIs); err != nil {
		return 0, err
	}
	sys.Drain()
	st := sys.Pool().Stats()
	procPerTTI := st.ProcTime.Mean() * float64(st.ProcTime.Count()) / float64(warmupTTIs)
	perWorkerMs := procPerTTI / float64(cfg.Pool.Workers) / 1e-3
	scale := math.Ceil(perWorkerMs / 0.6)
	if scale < 1 {
		scale = 1
	}
	return scale, nil
}
