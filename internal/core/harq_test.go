package core

import (
	"testing"

	"pran/internal/controller"
	"pran/internal/dataplane"
	"pran/internal/frame"
	"pran/internal/phy"
	"pran/internal/traffic"
)

// lowSNRConfig builds a single cell whose UEs sit right at their MCS
// operating points, so first transmissions fail regularly and the HARQ loop
// has work to do.
func lowSNRConfig() Config {
	cfg := smallConfig(1)
	// Tight SNR spread pins UEs near the MCSForSNR switch threshold, where
	// the fading jitter pushes a good fraction of TBs below water.
	cfg.Cells[0].Profile = traffic.CellProfile{
		Class:           traffic.Mixed,
		PeakUtilization: 0.9,
		SNRMeanDB:       8,
		SNRStdDB:        0.5,
		MeanUEsAtPeak:   4,
	}
	return cfg
}

func TestHARQLoopRecoversFailures(t *testing.T) {
	s, err := New(lowSNRConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunTTIs(400); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	// Let straggler retransmissions resolve.
	if err := s.RunTTIs(40); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	hs := s.HARQStatsTotal()
	if hs.FirstTxFailures == 0 {
		t.Fatal("no first-transmission failures at the operating point; scenario miscalibrated")
	}
	if hs.Retransmissions == 0 {
		t.Fatal("failures occurred but nothing was retransmitted")
	}
	if hs.Recovered == 0 {
		t.Fatal("retransmissions never recovered a transport block")
	}
	// Soft combining must recover the majority of resolved TBs within the
	// RV budget. (The exact ratio wobbles a few percent across runs because
	// worker completion order shifts which subframes see the busy-process
	// filter; the invariant is "combining wins", not a point estimate.)
	resolved := hs.Recovered + hs.Exhausted
	if resolved > 0 && float64(hs.Recovered)/float64(resolved) < 0.5 {
		t.Fatalf("recovery ratio %.2f too low (%+v)", float64(hs.Recovered)/float64(resolved), hs)
	}
	t.Logf("HARQ: %+v", hs)
}

func TestHARQInjectRespectsGrid(t *testing.T) {
	// The retransmission injector must always yield valid, non-overlapping
	// work even when fresh traffic occupies the same PRBs.
	loop := newHARQLoop()
	alloc := frame.Allocation{RNTI: 7, FirstPRB: 1, NumPRB: 3, MCS: 9, HARQProcess: 2, SNRdB: 10}
	task := &dataplane.Task{Cell: 0, TTI: 10, Alloc: alloc, Err: phy.ErrCRC}
	loop.onTaskDone(task, make([]byte, 8))

	work := frame.SubframeWork{
		Cell: 0, TTI: 18,
		Allocations: []frame.Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 3, MCS: 5, SNRdB: 20}, // overlaps
			{RNTI: 2, FirstPRB: 4, NumPRB: 2, MCS: 5, SNRdB: 20}, // clear
		},
	}
	overrides := loop.inject(&work)
	if len(overrides) != 1 {
		t.Fatalf("expected one override, got %d", len(overrides))
	}
	if err := work.Validate(phy.BW1_4MHz); err != nil {
		t.Fatalf("injected work invalid: %v", err)
	}
	found := false
	for i, a := range work.Allocations {
		if a.RNTI == 7 {
			found = true
			if a.RV != 2 {
				t.Fatalf("first retransmission must use RV 2, got %d", a.RV)
			}
			if _, ok := overrides[i]; !ok {
				t.Fatal("override index does not match retransmission")
			}
		}
		if a.RNTI == 1 {
			t.Fatal("overlapping fresh allocation survived")
		}
	}
	if !found {
		t.Fatal("retransmission not injected")
	}
}

func TestHARQInjectDefersConflicts(t *testing.T) {
	loop := newHARQLoop()
	a1 := frame.Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 4, MCS: 9, HARQProcess: 0, SNRdB: 10}
	a2 := frame.Allocation{RNTI: 2, FirstPRB: 2, NumPRB: 4, MCS: 9, HARQProcess: 0, SNRdB: 10}
	loop.onTaskDone(&dataplane.Task{TTI: 0, Alloc: a1, Err: phy.ErrCRC}, make([]byte, 4))
	loop.onTaskDone(&dataplane.Task{TTI: 0, Alloc: a2, Err: phy.ErrCRC}, make([]byte, 4))

	work := frame.SubframeWork{Cell: 0, TTI: 8}
	overrides := loop.inject(&work)
	if len(overrides) != 1 {
		t.Fatalf("conflicting retransmissions both injected: %d", len(overrides))
	}
	if err := work.Validate(phy.BW1_4MHz); err != nil {
		t.Fatal(err)
	}
	// The deferred one goes out next subframe.
	work2 := frame.SubframeWork{Cell: 0, TTI: 9}
	if got := loop.inject(&work2); len(got) != 1 {
		t.Fatalf("deferred retransmission not injected next TTI: %d", len(got))
	}
}

func TestHARQExhaustion(t *testing.T) {
	loop := newHARQLoop()
	alloc := frame.Allocation{RNTI: 3, FirstPRB: 0, NumPRB: 2, MCS: 9, HARQProcess: 1, SNRdB: 0}
	loop.onTaskDone(&dataplane.Task{TTI: 0, Alloc: alloc, Err: phy.ErrCRC}, make([]byte, 4))
	tti := frame.TTI(8)
	for round := 0; round < 3; round++ {
		work := frame.SubframeWork{Cell: 0, TTI: tti}
		overrides := loop.inject(&work)
		if len(overrides) != 1 {
			t.Fatalf("round %d: retransmission missing", round)
		}
		retx := work.Allocations[len(work.Allocations)-1]
		loop.onTaskDone(&dataplane.Task{TTI: tti, Alloc: retx, Err: phy.ErrCRC}, make([]byte, 4))
		tti += 8
	}
	// All four transmissions used; the process must be dropped.
	work := frame.SubframeWork{Cell: 0, TTI: tti}
	if got := loop.inject(&work); len(got) != 0 {
		t.Fatal("exhausted process still retransmitting")
	}
	st := loop.snapshot()
	if st.Exhausted != 1 || st.Retransmissions != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHARQAbandonedTasksDoNotAdvance(t *testing.T) {
	loop := newHARQLoop()
	alloc := frame.Allocation{RNTI: 4, FirstPRB: 0, NumPRB: 2, MCS: 9, SNRdB: 10}
	loop.onTaskDone(&dataplane.Task{TTI: 0, Alloc: alloc, Err: dataplane.ErrAbandoned}, nil)
	if loop.snapshot().FirstTxFailures != 0 {
		t.Fatal("abandoned task counted as CRC failure")
	}
	work := frame.SubframeWork{Cell: 0, TTI: 8}
	if got := loop.inject(&work); len(got) != 0 {
		t.Fatal("abandoned task scheduled a retransmission")
	}
}

// Ensure the HARQ-enabled system remains usable under all the existing
// config paths (controller stepping, RAN programs).
func TestHARQSystemIntegration(t *testing.T) {
	cfg := lowSNRConfig()
	cfg.Controller = controller.DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.MeasuredMissRate(100); err != nil {
		t.Fatal(err)
	}
	if s.Pool().Stats().Submitted == 0 {
		t.Fatal("no traffic")
	}
}
