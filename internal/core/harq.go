package core

import (
	"errors"
	"sync"

	"pran/internal/dataplane"
	"pran/internal/frame"
	"pran/internal/phy"
)

// HARQ retransmission loop. When a transport block fails its CRC, the MAC
// retransmits it on the same HARQ process 8 TTIs later with the next
// redundancy version; the data plane's per-cell HARQ manager soft-combines
// the attempts. The System closes this loop: decode failures reported by
// the pool schedule retransmissions that preempt fresh traffic on the same
// PRBs, and exhausted processes (after the full RV sequence) count as
// residual losses.

// rvSequence is the LTE redundancy-version order across attempts.
var rvSequence = [4]uint8{0, 2, 3, 1}

// harqRetxInterval is the LTE FDD synchronous HARQ round-trip in TTIs.
const harqRetxInterval = 8

// maxHARQAttempts bounds total transmissions of one TB.
const maxHARQAttempts = 4

type harqKey struct {
	rnti frame.RNTI
	proc uint8
}

// pendingRetx is one failed TB awaiting retransmission.
type pendingRetx struct {
	alloc   frame.Allocation
	payload []byte
	attempt int // number of transmissions already made
	dueTTI  frame.TTI
}

// HARQStats aggregates the retransmission loop's outcomes.
type HARQStats struct {
	// FirstTxFailures counts CRC failures on initial transmissions.
	FirstTxFailures uint64
	// Retransmissions counts retransmission attempts sent.
	Retransmissions uint64
	// Recovered counts TBs eventually decoded via combining.
	Recovered uint64
	// Exhausted counts TBs dropped after the full RV sequence.
	Exhausted uint64
}

// harqLoop tracks pending retransmissions for one cell. Worker callbacks
// and the TTI loop access it concurrently.
type harqLoop struct {
	mu      sync.Mutex
	pending map[harqKey]*pendingRetx
	stats   HARQStats
}

func newHARQLoop() *harqLoop {
	return &harqLoop{pending: make(map[harqKey]*pendingRetx)}
}

// onTaskDone processes one decode outcome. payload is the transmitted TB
// (retained so a failure can retransmit the same bits).
func (h *harqLoop) onTaskDone(t *dataplane.Task, payload []byte) {
	key := harqKey{t.Alloc.RNTI, t.Alloc.HARQProcess}
	h.mu.Lock()
	defer h.mu.Unlock()
	p, inFlight := h.pending[key]
	if t.Err == nil {
		if inFlight && p.attempt > 1 {
			h.stats.Recovered++
		}
		delete(h.pending, key)
		return
	}
	if !errIsCRC(t.Err) {
		// Abandoned or infrastructure errors don't advance HARQ state: the
		// UE will be rescheduled by the MAC.
		return
	}
	if !inFlight {
		// First transmission failed: queue attempt #2.
		h.stats.FirstTxFailures++
		h.pending[key] = &pendingRetx{
			alloc:   t.Alloc,
			payload: append([]byte(nil), payload...),
			attempt: 1,
			dueTTI:  t.TTI + harqRetxInterval,
		}
		return
	}
	// A retransmission failed.
	if p.attempt >= maxHARQAttempts {
		h.stats.Exhausted++
		delete(h.pending, key)
		return
	}
	p.dueTTI = t.TTI + harqRetxInterval
}

// errIsCRC reports whether the decode failed on CRC (vs abandoned etc.).
func errIsCRC(err error) bool {
	return errors.Is(err, phy.ErrCRC)
}

// inject rewrites a subframe's work to carry due retransmissions: fresh
// allocations overlapping a retransmission's PRBs are dropped, and the
// retransmission is appended with its next RV. It returns the payload
// overrides (allocation index → TB bits to transmit).
func (h *harqLoop) inject(work *frame.SubframeWork) map[int][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.pending) == 0 {
		return nil
	}
	// Phase 0: drop fresh allocations on busy HARQ processes regardless of
	// whether their retransmission is due this subframe — a real MAC never
	// schedules new data on a process that is still combining.
	fresh := work.Allocations[:0]
	for _, a := range work.Allocations {
		if _, busy := h.pending[harqKey{a.RNTI, a.HARQProcess}]; busy {
			continue
		}
		fresh = append(fresh, a)
	}
	work.Allocations = fresh
	// Phase 1: choose due retransmissions with mutually disjoint PRB spans
	// (two pendings may claim overlapping PRBs because their grants came
	// from different TTIs); losers retry next subframe.
	type span struct{ lo, hi int }
	var taken []span
	var chosen []*pendingRetx
	for _, p := range h.pending {
		if p.dueTTI > work.TTI || p.attempt >= maxHARQAttempts {
			continue
		}
		lo, hi := p.alloc.FirstPRB, p.alloc.FirstPRB+p.alloc.NumPRB
		conflict := false
		for _, s := range taken {
			if lo < s.hi && hi > s.lo {
				conflict = true
				break
			}
		}
		if conflict {
			p.dueTTI = work.TTI + 1
			continue
		}
		taken = append(taken, span{lo, hi})
		chosen = append(chosen, p)
	}
	if len(chosen) == 0 {
		return nil
	}
	// Phase 2: drop fresh allocations overlapping a retransmission's PRBs.
	kept := work.Allocations[:0]
	for _, a := range work.Allocations {
		overlap := false
		for _, s := range taken {
			if a.FirstPRB < s.hi && a.FirstPRB+a.NumPRB > s.lo {
				overlap = true
				break
			}
		}
		if !overlap {
			kept = append(kept, a)
		}
	}
	work.Allocations = kept
	// Phase 3: append retransmissions and record payload overrides.
	overrides := make(map[int][]byte, len(chosen))
	for _, p := range chosen {
		retx := p.alloc
		retx.RV = rvSequence[p.attempt%len(rvSequence)]
		work.Allocations = append(work.Allocations, retx)
		overrides[len(work.Allocations)-1] = p.payload
		p.attempt++
		p.dueTTI = work.TTI + harqRetxInterval // re-armed on failure
		h.stats.Retransmissions++
	}
	return overrides
}

// snapshot returns the current statistics.
func (h *harqLoop) snapshot() HARQStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}
