package core

import (
	"testing"

	"pran/internal/cluster"
	"pran/internal/controller"
	"pran/internal/dataplane"
	"pran/internal/frame"
	"pran/internal/phy"
	"pran/internal/ranapi"
	"pran/internal/traffic"
)

func smallConfig(nCells int) Config {
	return Config{
		Cells:             DefaultCells(nCells, phy.BW1_4MHz, 1),
		Pool:              dataplane.Config{Workers: 2, Policy: dataplane.EDF, DeadlineScale: 1000},
		Controller:        controller.DefaultConfig(),
		Cluster:           ClusterSpec{Servers: 4, Active: 1, CoresPerServer: 8, Speed: 1},
		Seed:              11,
		StartHour:         12,
		ControlPeriodTTIs: 20,
	}
}

func TestSystemEndToEnd(t *testing.T) {
	s, err := New(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumCells() != 2 {
		t.Fatal("cell count")
	}
	if err := s.RunTTIs(60); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if s.TTI() != 60 {
		t.Fatalf("tti %v", s.TTI())
	}
	st := s.Pool().Stats()
	if st.Submitted == 0 {
		t.Fatal("no tasks reached the pool")
	}
	if st.Completed+st.Abandoned != st.Submitted {
		t.Fatalf("task accounting: %+v", st)
	}
	// Controller stepped 3 times and observed demand.
	rounds, _, _ := s.Controller().Stats()
	if rounds != 3 {
		t.Fatalf("controller rounds %d", rounds)
	}
	if s.Controller().Monitor().TotalDemand() <= 0 {
		t.Fatal("no demand observed")
	}
	// Cost model accessor sane.
	if s.CostModel().Validate() != nil {
		t.Fatal("invalid model in use")
	}
}

func TestSystemDecodesCorrectly(t *testing.T) {
	// At the default profiles' SNRs, the vast majority of tasks must
	// decode successfully (CRC pass).
	s, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunTTIs(100); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	st := s.Pool().Stats()
	if st.Submitted == 0 {
		t.Fatal("no tasks")
	}
	failFrac := float64(st.CRCFailures) / float64(st.Submitted)
	if failFrac > 0.35 {
		t.Fatalf("CRC failure fraction %.2f too high (link adaptation broken?)", failFrac)
	}
}

func TestSystemWithRANProgram(t *testing.T) {
	s, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stats := ranapi.NewStatsProgram()
	if err := s.Programs().Register(stats); err != nil {
		t.Fatal(err)
	}
	throttle := ranapi.NewThrottleProgram(2)
	if err := s.Programs().Register(throttle); err != nil {
		t.Fatal(err)
	}
	if err := s.RunTTIs(50); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	st, ok := stats.Stats(frame.CellID(0))
	if !ok || st.Subframes != 50 {
		t.Fatalf("stats program saw %+v", st)
	}
	// Throttle is after stats in the chain, so stats sees the raw PRBs;
	// but the pool must never have processed more than 2 PRB per subframe.
	// 1.4 MHz cell → up to 6 PRB demand, so shedding must have occurred.
	if throttle.Shed() == 0 {
		t.Fatal("throttle never shed under full load")
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := smallConfig(2)
	cfg.Cells[1].Config.Bandwidth = phy.BW5MHz
	if _, err := New(cfg); err == nil {
		t.Fatal("mixed bandwidths accepted")
	}
	cfg = smallConfig(1)
	cfg.Pool.Workers = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad pool config accepted")
	}
	cfg = smallConfig(1)
	cfg.Cluster.Active = 9
	if _, err := New(cfg); err == nil {
		t.Fatal("bad cluster spec accepted")
	}
	cfg = smallConfig(1)
	cfg.Cells[0].Profile = traffic.CellProfile{}
	if _, err := New(cfg); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestSystemCloseTwice(t *testing.T) {
	s, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := s.RunTTIs(1); err == nil {
		t.Fatal("run after close succeeded")
	}
}

func TestDefaultCells(t *testing.T) {
	cells := DefaultCells(10, phy.BW5MHz, 2)
	if len(cells) != 10 {
		t.Fatal("count")
	}
	seen := map[uint16]bool{}
	for i, c := range cells {
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if err := c.Profile.Validate(); err != nil {
			t.Fatalf("cell %d profile: %v", i, err)
		}
		if c.Config.ID != frame.CellID(i) {
			t.Fatal("IDs not sequential")
		}
		seen[c.Config.PCI] = true
	}
	if len(seen) != 10 {
		t.Fatal("PCIs collide within a small deployment")
	}
}

func TestSystemDegradationFeedback(t *testing.T) {
	// A cell's degradation level — however it was set — must flow back to
	// the scheduler as an MCS cap at the next control period, and clear
	// when the cell returns to full service.
	s, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	caps := s.MCSCaps()
	if caps == nil {
		t.Fatal("MCS-cap program not registered on a ladder-capable system")
	}
	if caps.Cap(0) != phy.MaxMCS {
		t.Fatal("fresh system already capped")
	}
	if err := s.Pool().SetCellLevel(0, cluster.DegradeShedHARQ); err != nil {
		t.Fatal(err)
	}
	if err := s.RunTTIs(20); err != nil { // one control period
		t.Fatal(err)
	}
	s.Drain()
	if got, want := caps.Cap(0), cluster.DegradeShedHARQ.MCSCap(); got != want {
		t.Fatalf("cap %v after degradation, want %v", got, want)
	}
	if err := s.Pool().SetCellLevel(0, cluster.DegradeNone); err != nil {
		t.Fatal(err)
	}
	if err := s.RunTTIs(20); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if caps.Cap(0) != phy.MaxMCS {
		t.Fatal("cap not cleared after returning to full service")
	}
}

func TestSystemNoDegrade(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Pool.NoDegrade = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.MCSCaps() != nil {
		t.Fatal("NoDegrade system registered an MCS-cap program")
	}
	if err := s.RunTTIs(25); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if s.Pool().Stats().Submitted == 0 {
		t.Fatal("no tasks reached the pool")
	}
}

func TestMeasuredMissRateRuns(t *testing.T) {
	s, err := New(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rate, err := s.MeasuredMissRate(30)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0 || rate > 1 {
		t.Fatalf("miss rate %v", rate)
	}
}
