// Package traffic synthesizes the cellular workload PRAN's evaluation is
// driven by. The original paper used operator traces; those are proprietary,
// so this package reproduces their published statistical structure instead
// (DESIGN.md §2): strong diurnal swings, class-dependent peak hours (office
// cells peak mid-day, residential cells in the evening), peak-to-mean ratios
// of roughly 2–5×, and short-timescale burstiness.
//
// Two granularities share one set of shape functions:
//
//   - DayTrace produces second-scale utilization curves for the day-long
//     pooling experiments (E3, E4).
//   - Generator produces per-TTI UE allocations (PRBs + MCS) that feed the
//     real data plane in the deadline experiments (E5, E6).
//
// Concurrency: DayTrace values are immutable after construction and safe to
// read from any goroutine. Generator carries its own RNG stream and belongs
// to one goroutine; create one Generator per concurrent producer (seeded
// distinctly) rather than sharing.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"pran/internal/phy"
)

// Class labels a cell's dominant usage pattern, which fixes its diurnal
// shape. Spatially mixing classes is what creates the statistical
// multiplexing PRAN pools across.
type Class int

// Supported cell classes.
const (
	// Office cells peak during working hours and idle at night.
	Office Class = iota
	// Residential cells peak in the evening.
	Residential
	// Mixed cells blend both with a flatter profile.
	Mixed
	// Transport cells (commuter corridors) spike at rush hours.
	Transport
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Office:
		return "office"
	case Residential:
		return "residential"
	case Mixed:
		return "mixed"
	case Transport:
		return "transport"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// gauss is an unnormalized Gaussian bump centred at c hours with width w
// hours, evaluated with 24 h wraparound.
func gauss(tod, c, w float64) float64 {
	d := math.Mod(tod-c+36, 24) - 12
	return math.Exp(-d * d / (2 * w * w))
}

// Shape returns the class's normalized diurnal load shape at time-of-day
// tod (hours, [0,24)). The value is in (0, 1] with the daily peak at 1;
// every class keeps a small overnight floor (signalling, background sync).
func (c Class) Shape(tod float64) float64 {
	const floor = 0.08
	var v float64
	switch c {
	case Office:
		v = 0.85*gauss(tod, 11, 2.6) + 0.75*gauss(tod, 15, 2.4)
	case Residential:
		v = 0.55*gauss(tod, 8, 1.8) + 0.95*gauss(tod, 20.5, 2.8)
	case Mixed:
		v = 0.6*gauss(tod, 12, 4.5) + 0.7*gauss(tod, 19.5, 3.2)
	case Transport:
		v = 0.95*gauss(tod, 8.2, 1.1) + 0.95*gauss(tod, 17.8, 1.3) + 0.25*gauss(tod, 13, 3)
	default:
		v = 0.5
	}
	if v > 1 {
		v = 1
	}
	return floor + (1-floor)*v
}

// PeakHour returns the hour (0–24) at which the class's shape peaks,
// located by scanning at minute resolution.
func (c Class) PeakHour() float64 {
	best, bestV := 0.0, -1.0
	for m := 0; m < 24*60; m++ {
		tod := float64(m) / 60
		if v := c.Shape(tod); v > bestV {
			bestV, best = v, tod
		}
	}
	return best
}

// CellProfile parameterizes one cell's workload.
type CellProfile struct {
	// Class selects the diurnal shape.
	Class Class
	// PeakUtilization is the cell's PRB utilization at its daily peak
	// (0–1]. Values near 1 model busy urban cells.
	PeakUtilization float64
	// SNRMeanDB and SNRStdDB describe the cell's UE SNR distribution,
	// which determines the MCS mix and hence per-bit compute cost.
	SNRMeanDB float64
	// SNRStdDB is the standard deviation of UE SNR in dB.
	SNRStdDB float64
	// MeanUEsAtPeak is the average number of simultaneously scheduled UEs
	// per subframe at peak load.
	MeanUEsAtPeak float64
}

// Validate checks the profile.
func (p CellProfile) Validate() error {
	if p.PeakUtilization <= 0 || p.PeakUtilization > 1 {
		return fmt.Errorf("traffic: peak utilization %v outside (0,1]: %w", p.PeakUtilization, phy.ErrBadParameter)
	}
	if p.SNRStdDB < 0 {
		return fmt.Errorf("traffic: negative SNR std: %w", phy.ErrBadParameter)
	}
	if p.MeanUEsAtPeak <= 0 {
		return fmt.Errorf("traffic: MeanUEsAtPeak %v must be positive: %w", p.MeanUEsAtPeak, phy.ErrBadParameter)
	}
	return nil
}

// DefaultProfile returns a representative profile for the class, following
// the urban-deployment parameters in DESIGN.md (peak utilization 0.7–0.95,
// median SNR ~12 dB).
func DefaultProfile(c Class) CellProfile {
	switch c {
	case Office:
		return CellProfile{Class: c, PeakUtilization: 0.95, SNRMeanDB: 14, SNRStdDB: 5, MeanUEsAtPeak: 9}
	case Residential:
		return CellProfile{Class: c, PeakUtilization: 0.85, SNRMeanDB: 11, SNRStdDB: 6, MeanUEsAtPeak: 7}
	case Transport:
		return CellProfile{Class: c, PeakUtilization: 0.90, SNRMeanDB: 9, SNRStdDB: 6, MeanUEsAtPeak: 11}
	default:
		return CellProfile{Class: Mixed, PeakUtilization: 0.80, SNRMeanDB: 12, SNRStdDB: 5, MeanUEsAtPeak: 8}
	}
}

// DayTrace samples a cell's expected PRB utilization every stepSeconds over
// 24 h, multiplying the diurnal shape by AR(1) burstiness (correlation ~30 s)
// and clamping to [0, 1]. The same seed reproduces the same trace.
func DayTrace(p CellProfile, seed int64, stepSeconds float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if stepSeconds <= 0 {
		return nil, fmt.Errorf("traffic: step %v: %w", stepSeconds, phy.ErrBadParameter)
	}
	n := int(24 * 3600 / stepSeconds)
	rng := rand.New(rand.NewSource(seed))
	// AR(1) with 30 s correlation time and ±20% relative swing.
	rho := math.Exp(-stepSeconds / 30)
	sigma := 0.20 * math.Sqrt(1-rho*rho)
	ar := 0.0
	out := make([]float64, n)
	for i := range out {
		tod := float64(i) * stepSeconds / 3600
		ar = rho*ar + sigma*rng.NormFloat64()
		u := p.PeakUtilization * p.Class.Shape(tod) * (1 + ar)
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out, nil
}

// PeakToMean returns the peak-to-mean ratio of a utilization trace.
func PeakToMean(trace []float64) float64 {
	if len(trace) == 0 {
		return 0
	}
	peak, sum := 0.0, 0.0
	for _, v := range trace {
		if v > peak {
			peak = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return peak / (sum / float64(len(trace)))
}

// StandardMix assigns classes to n cells in the documented urban proportions
// (30% office, 40% residential, 20% mixed, 10% transport), deterministically
// interleaved so any prefix approximates the mix.
func StandardMix(n int) []Class {
	weights := []struct {
		c Class
		w int
	}{{Office, 3}, {Residential, 4}, {Mixed, 2}, {Transport, 1}}
	var cycle []Class
	for _, e := range weights {
		for i := 0; i < e.w; i++ {
			cycle = append(cycle, e.c)
		}
	}
	out := make([]Class, n)
	for i := range out {
		out[i] = cycle[i%len(cycle)]
	}
	return out
}
