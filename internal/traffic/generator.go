package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"pran/internal/frame"
	"pran/internal/phy"
)

// Generator produces per-TTI subframe workloads (UE allocations with PRB
// counts and MCS) for a set of cells, consistent with each cell's diurnal
// profile: the expected PRB utilization at any instant matches
// PeakUtilization × Shape(time-of-day), modulated by AR(1) burstiness.
// Each cell keeps a persistent UE population whose SNRs (and therefore MCS)
// are stable across TTIs with small fading jitter, matching how real
// schedulers see users.
//
// The generator is deterministic for a given seed and safe for concurrent
// use across *different* cells (each cell has its own PRNG), but per-cell
// calls must be serialized in TTI order.
type Generator struct {
	bw    phy.Bandwidth
	cells []*cellGen
	start float64 // starting time-of-day in hours

	// sched, when non-nil, reshapes each cell's utilization with the
	// workload-diversity event layer; firstCell maps this generator's local
	// cell 0 onto the schedule's absolute cell index. Event factors are
	// deterministic functions of time and consume no PRNG draws, so a nil
	// schedule (or one with no active events) leaves traces bit-identical
	// to the pre-event generator.
	sched     *Schedule
	firstCell int
}

type cellGen struct {
	prof    CellProfile
	rng     *rand.Rand
	ar      float64
	arRho   float64
	arSigma float64
	ues     []ueState
	next    int // round-robin cursor into ues
}

type ueState struct {
	rnti  frame.RNTI
	snrDB float64
}

// NewGenerator builds a workload generator for len(profiles) cells sharing
// one bandwidth. startHour sets the time-of-day at TTI 0.
func NewGenerator(bw phy.Bandwidth, profiles []CellProfile, seed int64, startHour float64) (*Generator, error) {
	if err := bw.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("traffic: no cell profiles: %w", phy.ErrBadParameter)
	}
	if startHour < 0 || startHour >= 24 {
		return nil, fmt.Errorf("traffic: start hour %v outside [0,24): %w", startHour, phy.ErrBadParameter)
	}
	g := &Generator{bw: bw, start: startHour}
	for ci, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(ci)*7919))
		// AR(1) stepped per TTI (1 ms) with 30 s correlation time.
		rho := math.Exp(-0.001 / 30)
		c := &cellGen{
			prof:    p,
			rng:     rng,
			arRho:   rho,
			arSigma: 0.20 * math.Sqrt(1-rho*rho),
		}
		// Persistent UE pool: 4× the peak concurrency, SNRs drawn once.
		n := int(math.Ceil(p.MeanUEsAtPeak * 4))
		if n < 4 {
			n = 4
		}
		for u := 0; u < n; u++ {
			c.ues = append(c.ues, ueState{
				rnti:  frame.RNTI(100 + u),
				snrDB: p.SNRMeanDB + rng.NormFloat64()*p.SNRStdDB,
			})
		}
		g.cells = append(g.cells, c)
	}
	return g, nil
}

// SetSchedule installs a workload-diversity event schedule. firstCell is
// the schedule's absolute index of this generator's local cell 0, so
// single-cell generators spread across agents can share one system-wide
// schedule. The schedule's start hour must match the generator's, and every
// local cell must map inside the schedule's cell range. A nil schedule
// uninstalls events.
func (g *Generator) SetSchedule(s *Schedule, firstCell int) error {
	if s == nil {
		g.sched, g.firstCell = nil, 0
		return nil
	}
	if s.StartHour() != g.start {
		return fmt.Errorf("traffic: schedule start hour %v != generator %v: %w",
			s.StartHour(), g.start, phy.ErrBadParameter)
	}
	if firstCell < 0 || firstCell+len(g.cells) > s.NumCells() {
		return fmt.Errorf("traffic: cells [%d,%d) outside schedule's %d cells: %w",
			firstCell, firstCell+len(g.cells), s.NumCells(), phy.ErrBadParameter)
	}
	g.sched, g.firstCell = s, firstCell
	return nil
}

// NumCells returns the number of cells the generator drives.
func (g *Generator) NumCells() int { return len(g.cells) }

// Bandwidth returns the shared cell bandwidth.
func (g *Generator) Bandwidth() phy.Bandwidth { return g.bw }

// todAt converts a TTI to time-of-day hours with wraparound.
func (g *Generator) todAt(tti frame.TTI) float64 {
	return math.Mod(g.start+float64(tti)*0.001/3600, 24)
}

// Utilization returns the instantaneous target PRB utilization for a cell
// at a TTI, before burstiness (the deterministic diurnal component).
func (g *Generator) Utilization(cell int, tti frame.TTI) (float64, error) {
	if cell < 0 || cell >= len(g.cells) {
		return 0, fmt.Errorf("traffic: cell %d out of %d: %w", cell, len(g.cells), phy.ErrBadParameter)
	}
	c := g.cells[cell]
	return c.prof.PeakUtilization * c.prof.Class.Shape(g.todAt(tti)), nil
}

// Subframe generates the uplink workload for one cell and TTI. Allocations
// are contiguous, non-overlapping, and carry each UE's SNR so the data plane
// can emulate the channel. Calls for one cell must be made in TTI order.
func (g *Generator) Subframe(cell int, tti frame.TTI) (frame.SubframeWork, error) {
	if cell < 0 || cell >= len(g.cells) {
		return frame.SubframeWork{}, fmt.Errorf("traffic: cell %d out of %d: %w", cell, len(g.cells), phy.ErrBadParameter)
	}
	c := g.cells[cell]
	// Advance burstiness and compute this TTI's PRB target.
	c.ar = c.arRho*c.ar + c.arSigma*c.rng.NormFloat64()
	u := c.prof.PeakUtilization * c.prof.Class.Shape(g.todAt(tti)) * (1 + c.ar)
	if g.sched != nil {
		u *= g.sched.Factor(g.firstCell+cell, float64(tti)*0.001)
	}
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	targetPRB := int(math.Round(u * float64(g.bw.PRB())))
	work := frame.SubframeWork{Cell: frame.CellID(cell), TTI: tti}
	if targetPRB == 0 {
		return work, nil
	}
	// Concurrency scales with load; at peak it averages MeanUEsAtPeak.
	meanUEs := c.prof.MeanUEsAtPeak * u / c.prof.PeakUtilization
	nUEs := 1 + c.rng.Intn(int(math.Ceil(2*meanUEs)))
	if nUEs > targetPRB {
		nUEs = targetPRB
	}
	alloc := frame.NewPRBAllocator(g.bw)
	remaining := targetPRB
	for i := 0; i < nUEs && remaining > 0; i++ {
		ue := c.ues[c.next%len(c.ues)]
		c.next++
		share := remaining / (nUEs - i)
		if share < 1 {
			share = 1
		}
		// Jitter the share ±50% to get a realistic size spread.
		size := int(float64(share) * (0.5 + c.rng.Float64()))
		if size < 1 {
			size = 1
		}
		if size > remaining {
			size = remaining
		}
		first, ok := alloc.Take(size)
		if !ok {
			break
		}
		// Per-TTI fading jitter around the UE's long-term SNR.
		snr := ue.snrDB + c.rng.NormFloat64()*1.5
		work.Allocations = append(work.Allocations, frame.Allocation{
			RNTI:        ue.rnti,
			FirstPRB:    first,
			NumPRB:      size,
			MCS:         phy.MCSForSNR(snr),
			Dir:         phy.Uplink,
			HARQProcess: uint8(uint64(tti) % 8),
			RV:          0,
			SNRdB:       snr,
		})
		remaining -= size
	}
	return work, nil
}
