package traffic

// This file is the workload-diversity event layer: composable, seeded
// episodes laid on top of the diurnal shapes — the flash crowds, handover
// waves, and correlated regional surges that stress placement, failover, and
// the degradation ladder together (the load shapes Tran et al. show dominate
// virtualized-BBU compute demand). Events are deterministic functions of
// time; they consume no randomness at application time, so a Generator with
// a Schedule installed draws exactly the same PRNG stream as one without,
// and a nil Schedule reproduces the pre-event traces bit for bit.
//
// Events operate on the pre-clamp utilization vector of the whole system
// (one slot per cell), which is what lets MobilityWave *conserve* total
// offered load while moving it between cells: it stresses placement, not
// capacity. FlashCrowd and RegionalSurge deliberately add load.
//
// Concurrency: Event and Schedule values are immutable after construction
// and safe to use from any goroutine (Apply mutates only the caller's
// vector; Factor allocates its own scratch).

import (
	"fmt"
	"math"
	"math/rand"

	"pran/internal/phy"
)

// Event is one workload-diversity episode. Apply reshapes the pre-clamp
// utilization vector u (indexed by absolute cell) at tSec seconds after
// trace start; outside the event's active window it must leave u untouched.
type Event interface {
	// Active reports whether the event has any effect at tSec.
	Active(tSec float64) bool
	// Apply reshapes u in place at tSec.
	Apply(tSec float64, u []float64)
	// String describes the event for reports and logs.
	String() string
}

// envelope is the shared ramp-up / plateau / decay activation profile, 0
// outside [start, start+ramp+plateau+decay] and 1 on the plateau.
func envelope(tSec, start, ramp, plateau, decay float64) float64 {
	dt := tSec - start
	switch {
	case dt < 0:
		return 0
	case dt < ramp:
		if ramp <= 0 {
			return 1
		}
		return dt / ramp
	case dt < ramp+plateau:
		return 1
	case dt < ramp+plateau+decay:
		if decay <= 0 {
			return 0
		}
		return 1 - (dt-ramp-plateau)/decay
	default:
		return 0
	}
}

// FlashCrowd spikes one cell's load by Peak× (stadium letting out, concert,
// incident): utilization ramps up over RampSec, holds for PlateauSec, and
// decays over DecaySec. It adds load — the spike is new demand, not demand
// moved from elsewhere.
type FlashCrowd struct {
	// Cell is the absolute cell index the crowd forms in.
	Cell int
	// StartSec is the onset, in seconds after trace start.
	StartSec float64
	// RampSec, PlateauSec, DecaySec shape the episode.
	RampSec, PlateauSec, DecaySec float64
	// Peak is the multiplier at full plateau (5–10× is typical).
	Peak float64
}

// Active implements Event.
func (e FlashCrowd) Active(tSec float64) bool {
	return envelope(tSec, e.StartSec, e.RampSec, e.PlateauSec, e.DecaySec) > 0
}

// Apply implements Event.
func (e FlashCrowd) Apply(tSec float64, u []float64) {
	if e.Cell < 0 || e.Cell >= len(u) {
		return
	}
	env := envelope(tSec, e.StartSec, e.RampSec, e.PlateauSec, e.DecaySec)
	if env <= 0 {
		return
	}
	u[e.Cell] *= 1 + (e.Peak-1)*env
}

// String implements Event.
func (e FlashCrowd) String() string {
	return fmt.Sprintf("flash-crowd cell=%d start=%.0fs ramp=%.0fs plateau=%.0fs decay=%.0fs peak=%.1fx",
		e.Cell, e.StartSec, e.RampSec, e.PlateauSec, e.DecaySec, e.Peak)
}

// MobilityWave migrates load mass across an ordered cell list (a commuter
// corridor, a handover front) at a configurable speed. Every path cell
// donates Fraction of its current load into a pool that is redistributed
// across the path weighted by a Gaussian front centred at the wave's current
// position, so total offered load is conserved exactly (pre-clamp): the wave
// stresses *placement*, not capacity. Before the front enters the path and
// after it leaves, donations return to their donors and the wave is a no-op.
type MobilityWave struct {
	// Path is the ordered list of absolute cell indices the front crosses.
	Path []int
	// StartSec is when the front is at path position 0.
	StartSec float64
	// CellsPerSec is the front speed along the path.
	CellsPerSec float64
	// WidthCells is the Gaussian front width (σ), in path positions.
	WidthCells float64
	// Fraction in (0,1] is the share of each path cell's load that rides
	// the wave.
	Fraction float64
}

// frontMargin is how many front widths past either path end the wave is
// still considered active (the Gaussian tail it drags along).
const frontMargin = 3.0

// position returns the front's path position at tSec.
func (e MobilityWave) position(tSec float64) float64 {
	return (tSec - e.StartSec) * e.CellsPerSec
}

// Active implements Event.
func (e MobilityWave) Active(tSec float64) bool {
	if len(e.Path) == 0 {
		return false
	}
	p := e.position(tSec)
	return p > -frontMargin*e.WidthCells && p < float64(len(e.Path)-1)+frontMargin*e.WidthCells
}

// Apply implements Event.
func (e MobilityWave) Apply(tSec float64, u []float64) {
	if !e.Active(tSec) {
		return
	}
	p := e.position(tSec)
	w := e.WidthCells
	if w <= 0 {
		w = 1
	}
	// Front weights over the path, and the donation pool.
	var sumW, pool float64
	weights := make([]float64, len(e.Path))
	for k, cell := range e.Path {
		if cell < 0 || cell >= len(u) {
			return // malformed path: leave the vector untouched
		}
		d := float64(k) - p
		weights[k] = math.Exp(-d * d / (2 * w * w))
		sumW += weights[k]
		pool += e.Fraction * u[cell]
	}
	if sumW <= 1e-12 {
		return
	}
	// Redistribute: each path cell keeps (1-Fraction) of its own load and
	// receives its front-weighted share of the pool. Σu is unchanged.
	for k, cell := range e.Path {
		u[cell] = u[cell]*(1-e.Fraction) + pool*weights[k]/sumW
	}
}

// String implements Event.
func (e MobilityWave) String() string {
	return fmt.Sprintf("mobility-wave path=%v start=%.0fs speed=%.2fcells/s width=%.1f fraction=%.2f",
		e.Path, e.StartSec, e.CellsPerSec, e.WidthCells, e.Fraction)
}

// RegionalSurge applies a correlated multiplier across a cell subset (a
// city-wide alert, a weather event, a popular broadcast): every cell in the
// region swells together, which defeats the statistical multiplexing pooling
// relies on and forces the controller to activate capacity or degrade.
type RegionalSurge struct {
	// Cells lists the absolute cell indices in the region.
	Cells []int
	// StartSec is the onset.
	StartSec float64
	// RampSec, HoldSec, DecaySec shape the episode.
	RampSec, HoldSec, DecaySec float64
	// Factor is the correlated multiplier at full hold.
	Factor float64
}

// Active implements Event.
func (e RegionalSurge) Active(tSec float64) bool {
	return envelope(tSec, e.StartSec, e.RampSec, e.HoldSec, e.DecaySec) > 0
}

// Apply implements Event.
func (e RegionalSurge) Apply(tSec float64, u []float64) {
	env := envelope(tSec, e.StartSec, e.RampSec, e.HoldSec, e.DecaySec)
	if env <= 0 {
		return
	}
	m := 1 + (e.Factor-1)*env
	for _, cell := range e.Cells {
		if cell >= 0 && cell < len(u) {
			u[cell] *= m
		}
	}
}

// String implements Event.
func (e RegionalSurge) String() string {
	return fmt.Sprintf("regional-surge cells=%v start=%.0fs ramp=%.0fs hold=%.0fs decay=%.0fs factor=%.1fx",
		e.Cells, e.StartSec, e.RampSec, e.HoldSec, e.DecaySec, e.Factor)
}

// Schedule is a bound set of events: it knows the full system's cell
// profiles (and trace start hour), so it can compute the deterministic
// pre-event utilization vector any event reshapes. One Schedule is shared by
// every consumer of a run — the analytical DayTraces and each agent's
// per-TTI Generator see the same events.
type Schedule struct {
	profiles  []CellProfile
	startHour float64
	events    []Event
}

// NewSchedule binds events to the full system's cell profiles. startHour is
// the time-of-day (hours) at trace second 0 and must match the Generators
// the schedule is later installed into.
func NewSchedule(profiles []CellProfile, startHour float64, events ...Event) (*Schedule, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("traffic: schedule needs cell profiles: %w", phy.ErrBadParameter)
	}
	if startHour < 0 || startHour >= 24 {
		return nil, fmt.Errorf("traffic: schedule start hour %v outside [0,24): %w", startHour, phy.ErrBadParameter)
	}
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("traffic: schedule profile %d: %w", i, err)
		}
	}
	return &Schedule{
		profiles:  append([]CellProfile(nil), profiles...),
		startHour: startHour,
		events:    append([]Event(nil), events...),
	}, nil
}

// NumCells returns the number of cells the schedule is bound to.
func (s *Schedule) NumCells() int { return len(s.profiles) }

// StartHour returns the time-of-day at trace second 0.
func (s *Schedule) StartHour() float64 { return s.startHour }

// Events returns the schedule's events (shared slice; do not mutate).
func (s *Schedule) Events() []Event { return s.events }

// ActiveAt reports whether any event reshapes load at tSec.
func (s *Schedule) ActiveAt(tSec float64) bool {
	for _, e := range s.events {
		if e.Active(tSec) {
			return true
		}
	}
	return false
}

// Apply runs every event, in order, over the caller's pre-clamp utilization
// vector (len(u) must equal NumCells()).
func (s *Schedule) Apply(tSec float64, u []float64) {
	for _, e := range s.events {
		e.Apply(tSec, u)
	}
}

// base fills u with the deterministic (diurnal, pre-noise, pre-event)
// utilization of every cell at tSec.
func (s *Schedule) base(tSec float64, u []float64) {
	tod := math.Mod(s.startHour+tSec/3600, 24)
	for i, p := range s.profiles {
		u[i] = p.PeakUtilization * p.Class.Shape(tod)
	}
}

// Utilizations returns the deterministic event-shaped utilization vector at
// tSec — the diurnal base with every event applied, unclamped. This is the
// analytical view of the schedule (what DayTraces converges to without
// burstiness).
func (s *Schedule) Utilizations(tSec float64) []float64 {
	u := make([]float64, len(s.profiles))
	s.base(tSec, u)
	s.Apply(tSec, u)
	return u
}

// Factor returns the multiplicative load factor events impose on one cell at
// tSec: the ratio of the cell's deterministic event-shaped utilization to
// its deterministic base. Generators apply this factor to their own bursty
// utilization, which keeps per-cell generation independent (no shared
// mutable state) while cross-cell events like MobilityWave still conserve
// load in the deterministic aggregate. Returns 1 when no event is active.
func (s *Schedule) Factor(cell int, tSec float64) float64 {
	if cell < 0 || cell >= len(s.profiles) || !s.ActiveAt(tSec) {
		return 1
	}
	base := make([]float64, len(s.profiles))
	s.base(tSec, base)
	shaped := append([]float64(nil), base...)
	s.Apply(tSec, shaped)
	// Class shapes keep an overnight floor and PeakUtilization is positive,
	// so the base never vanishes.
	return shaped[cell] / base[cell]
}

// RandomSchedule draws a seeded, reproducible event schedule covering
// simSeconds of trace: one flash crowd, one mobility wave along a shuffled
// corridor, and one regional surge over roughly a third of the cells, with
// seeded start times, magnitudes, and cell choices. Identical seeds yield
// identical schedules; the soak harness records the seed so any failure
// replays exactly.
func RandomSchedule(profiles []CellProfile, startHour float64, seed int64, simSeconds float64) (*Schedule, error) {
	if simSeconds <= 0 {
		return nil, fmt.Errorf("traffic: random schedule duration %v: %w", simSeconds, phy.ErrBadParameter)
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(profiles)
	if n == 0 {
		return nil, fmt.Errorf("traffic: random schedule needs cell profiles: %w", phy.ErrBadParameter)
	}
	var events []Event

	// Flash crowd early: one cell spikes 5–10×.
	events = append(events, FlashCrowd{
		Cell:       rng.Intn(n),
		StartSec:   (0.05 + 0.10*rng.Float64()) * simSeconds,
		RampSec:    0.05 * simSeconds,
		PlateauSec: 0.15 * simSeconds,
		DecaySec:   0.10 * simSeconds,
		Peak:       5 + 5*rng.Float64(),
	})

	// Mobility wave mid-trace along a shuffled corridor of up to 8 cells.
	pathLen := n
	if pathLen > 8 {
		pathLen = 8
	}
	path := rng.Perm(n)[:pathLen]
	waveStart := (0.35 + 0.05*rng.Float64()) * simSeconds
	waveSpan := 0.30 * simSeconds // front crosses the corridor in ~30% of the trace
	events = append(events, MobilityWave{
		Path:        path,
		StartSec:    waveStart,
		CellsPerSec: float64(pathLen) / waveSpan,
		WidthCells:  1.5,
		Fraction:    0.5 + 0.3*rng.Float64(),
	})

	// Regional surge late: a correlated 2–4× swell over about a third of
	// the cells.
	region := rng.Perm(n)[:(n+2)/3]
	events = append(events, RegionalSurge{
		Cells:    region,
		StartSec: (0.65 + 0.05*rng.Float64()) * simSeconds,
		RampSec:  0.05 * simSeconds,
		HoldSec:  0.15 * simSeconds,
		DecaySec: 0.05 * simSeconds,
		Factor:   2 + 2*rng.Float64(),
	})
	return NewSchedule(profiles, startHour, events...)
}

// DayTraces samples every cell's expected PRB utilization jointly over 24 h,
// applying the event schedule to the full pre-clamp vector each step so
// cross-cell events (MobilityWave) redistribute load exactly. Cell i draws
// from its own PRNG stream seeded seed+311·i — with a nil (or empty)
// schedule, row i is bit-identical to DayTrace(profiles[i], seed+311*i,
// stepSeconds), the pre-event generator.
func DayTraces(profiles []CellProfile, seed int64, stepSeconds float64, sched *Schedule) ([][]float64, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("traffic: no cell profiles: %w", phy.ErrBadParameter)
	}
	if stepSeconds <= 0 {
		return nil, fmt.Errorf("traffic: step %v: %w", stepSeconds, phy.ErrBadParameter)
	}
	if sched != nil && sched.NumCells() != len(profiles) {
		return nil, fmt.Errorf("traffic: schedule bound to %d cells, traces cover %d: %w",
			sched.NumCells(), len(profiles), phy.ErrBadParameter)
	}
	type arCell struct {
		rng   *rand.Rand
		ar    float64
		rho   float64
		sigma float64
	}
	cells := make([]arCell, len(profiles))
	rho := math.Exp(-stepSeconds / 30)
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		cells[i] = arCell{
			rng:   rand.New(rand.NewSource(seed + int64(i)*311)),
			rho:   rho,
			sigma: 0.20 * math.Sqrt(1-rho*rho),
		}
	}
	n := int(24 * 3600 / stepSeconds)
	out := make([][]float64, len(profiles))
	for i := range out {
		out[i] = make([]float64, n)
	}
	u := make([]float64, len(profiles))
	for step := 0; step < n; step++ {
		tSec := float64(step) * stepSeconds
		tod := tSec / 3600
		for i := range cells {
			c := &cells[i]
			c.ar = c.rho*c.ar + c.sigma*c.rng.NormFloat64()
			u[i] = profiles[i].PeakUtilization * profiles[i].Class.Shape(tod) * (1 + c.ar)
		}
		if sched != nil {
			sched.Apply(tSec, u)
		}
		for i, v := range u {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[i][step] = v
		}
	}
	return out, nil
}
