package traffic

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
)

// mixProfiles builds the standard-mix profile list for n cells.
func mixProfiles(n int) []CellProfile {
	classes := StandardMix(n)
	out := make([]CellProfile, n)
	for i, c := range classes {
		out[i] = DefaultProfile(c)
	}
	return out
}

func TestEnvelopeShape(t *testing.T) {
	cases := []struct {
		t, want float64
	}{
		{-1, 0}, {0, 0}, {5, 0.5}, {10, 1}, {15, 1}, {20, 1}, {25, 0.5}, {30, 0}, {40, 0},
	}
	for _, c := range cases {
		if got := envelope(c.t, 0, 10, 10, 10); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("envelope(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Zero-length ramp is an instant onset, zero-length decay an instant cut.
	if envelope(0, 0, 0, 5, 0) != 1 || envelope(5.1, 0, 0, 5, 0) != 0 {
		t.Error("degenerate ramp/decay mishandled")
	}
}

func TestFlashCrowdScalesOneCell(t *testing.T) {
	fc := FlashCrowd{Cell: 2, StartSec: 10, RampSec: 5, PlateauSec: 10, DecaySec: 5, Peak: 8}
	u := []float64{0.3, 0.3, 0.3, 0.3}
	fc.Apply(20, u) // mid-plateau
	if math.Abs(u[2]-0.3*8) > 1e-12 {
		t.Fatalf("spiked cell %v, want %v", u[2], 2.4)
	}
	for _, i := range []int{0, 1, 3} {
		if u[i] != 0.3 {
			t.Fatalf("cell %d perturbed: %v", i, u[i])
		}
	}
	if fc.Active(5) || !fc.Active(12) || fc.Active(40) {
		t.Fatal("activity window wrong")
	}
}

func TestRegionalSurgeCorrelated(t *testing.T) {
	rs := RegionalSurge{Cells: []int{0, 3}, StartSec: 0, RampSec: 0, HoldSec: 10, DecaySec: 0, Factor: 3}
	u := []float64{0.2, 0.2, 0.2, 0.2}
	rs.Apply(5, u)
	if math.Abs(u[0]-0.6) > 1e-12 || math.Abs(u[3]-0.6) > 1e-12 {
		t.Fatalf("region not scaled: %v", u)
	}
	if u[1] != 0.2 || u[2] != 0.2 {
		t.Fatalf("cells outside region perturbed: %v", u)
	}
}

// TestMobilityWaveConservesLoad is the acceptance property: the wave
// preserves total offered load within 1% (here: exactly, pre-clamp) at every
// instant, for randomized waves over randomized utilization vectors.
func TestMobilityWaveConservesLoad(t *testing.T) {
	profiles := mixProfiles(12)
	sched, err := RandomSchedule(profiles, 12, 7, 600)
	if err != nil {
		t.Fatal(err)
	}
	// Property over the full random schedule's wave alone...
	var wave MobilityWave
	found := false
	for _, e := range sched.Events() {
		if w, ok := e.(MobilityWave); ok {
			wave, found = w, true
		}
	}
	if !found {
		t.Fatal("random schedule has no mobility wave")
	}
	for step := 0; step <= 600; step++ {
		tSec := float64(step)
		u := sched.Utilizations(tSec) // deterministic base, all events
		// ...and directly: apply only the wave to a fresh base.
		base := make([]float64, len(profiles))
		sched.base(tSec, base)
		before := sum(base)
		wave.Apply(tSec, base)
		after := sum(base)
		if before <= 0 {
			t.Fatalf("t=%v: degenerate base", tSec)
		}
		if rel := math.Abs(after-before) / before; rel > 0.01 {
			t.Fatalf("t=%v: wave moved total load by %.3f%% (before %v after %v)", tSec, rel*100, before, after)
		}
		_ = u
	}
	// Explicit waves across widths and speeds, on uniform vectors where the
	// arithmetic is easy to audit.
	for _, w := range []float64{0.5, 1, 2.5} {
		for _, speed := range []float64{0.5, 2, 10} {
			wave := MobilityWave{Path: []int{0, 1, 2, 3, 4}, StartSec: 0, CellsPerSec: speed, WidthCells: w, Fraction: 0.7}
			for tSec := -2.0; tSec < 12; tSec += 0.25 {
				u := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
				before := sum(u)
				wave.Apply(tSec, u)
				if math.Abs(sum(u)-before) > 1e-9 {
					t.Fatalf("w=%v speed=%v t=%v: sum %v != %v", w, speed, tSec, sum(u), before)
				}
			}
		}
	}
}

func sum(u []float64) float64 {
	s := 0.0
	for _, v := range u {
		s += v
	}
	return s
}

// TestMobilityWaveMovesLoad checks the wave actually concentrates load at
// the front (it is not a no-op that trivially conserves).
func TestMobilityWaveMovesLoad(t *testing.T) {
	wave := MobilityWave{Path: []int{0, 1, 2, 3}, StartSec: 0, CellsPerSec: 1, WidthCells: 0.8, Fraction: 0.8}
	u := []float64{0.25, 0.25, 0.25, 0.25}
	wave.Apply(2, u) // front at cell 2
	if u[2] <= 0.3 {
		t.Fatalf("front cell not amplified: %v", u)
	}
	if u[0] >= 0.25 {
		t.Fatalf("trailing cell not drained: %v", u)
	}
}

// TestNoEventsBitIdentical is the acceptance fidelity contract: with no
// schedule installed (or an event-free schedule outside its windows), the
// per-TTI generator's output is bit-identical to the pre-event generator.
func TestNoEventsBitIdentical(t *testing.T) {
	profiles := mixProfiles(4)
	mk := func() *Generator {
		g, err := NewGenerator(phy.BW5MHz, profiles, 42, 12)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	plain, nilSched, empty := mk(), mk(), mk()
	if err := nilSched.SetSchedule(nil, 0); err != nil {
		t.Fatal(err)
	}
	es, err := NewSchedule(profiles, 12) // no events at all
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.SetSchedule(es, 0); err != nil {
		t.Fatal(err)
	}
	for tti := frame.TTI(0); tti < 3000; tti++ {
		for cell := range profiles {
			a, err1 := plain.Subframe(cell, tti)
			b, err2 := nilSched.Subframe(cell, tti)
			c, err3 := empty.Subframe(cell, tti)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatal(err1, err2, err3)
			}
			if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
				t.Fatalf("tti %d cell %d: schedules perturb the event-free trace", tti, cell)
			}
		}
	}
	// Same for day traces: joint generation with nil schedule matches the
	// pre-event single-cell API bit for bit.
	traces, err := DayTraces(profiles, 42, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range profiles {
		solo, err := DayTrace(p, 42+int64(i)*311, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(traces[i], solo) {
			t.Fatalf("cell %d: DayTraces(nil schedule) != DayTrace", i)
		}
	}
}

// TestScheduleSeedReproducibility is the satellite property: identical
// seeds yield bit-identical event schedules and traces across all classes
// and event types; distinct seeds yield distinct schedules.
func TestScheduleSeedReproducibility(t *testing.T) {
	profiles := mixProfiles(10) // covers all four classes
	const sim = 300.0
	s1, err := RandomSchedule(profiles, 12, 99, sim)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RandomSchedule(profiles, 12, 99, sim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Events(), s2.Events()) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", s1.Events(), s2.Events())
	}
	s3, err := RandomSchedule(profiles, 12, 100, sim)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.Events(), s3.Events()) {
		t.Fatal("distinct seeds produced identical schedules")
	}
	// All three event types present.
	kinds := map[string]bool{}
	for _, e := range s1.Events() {
		switch e.(type) {
		case FlashCrowd:
			kinds["flash"] = true
		case MobilityWave:
			kinds["wave"] = true
		case RegionalSurge:
			kinds["surge"] = true
		}
	}
	if len(kinds) != 3 {
		t.Fatalf("random schedule missing event types: %v", kinds)
	}

	// Traces under the same schedule + seed are bit-identical...
	mkGen := func(seed int64, s *Schedule) *Generator {
		g, err := NewGenerator(phy.BW5MHz, profiles, seed, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetSchedule(s, 0); err != nil {
			t.Fatal(err)
		}
		return g
	}
	ga, gb, gc := mkGen(7, s1), mkGen(7, s2), mkGen(8, s1)
	identical, distinct := true, false
	for tti := frame.TTI(0); tti < 2000; tti++ {
		for cell := range profiles {
			a, _ := ga.Subframe(cell, tti)
			b, _ := gb.Subframe(cell, tti)
			c, _ := gc.Subframe(cell, tti)
			if !reflect.DeepEqual(a, b) {
				identical = false
			}
			if !reflect.DeepEqual(a, c) {
				distinct = true
			}
		}
	}
	if !identical {
		t.Fatal("same seed + schedule produced different traces")
	}
	if !distinct {
		t.Fatal("distinct generator seeds produced identical traces")
	}

	// ...and joint day traces reproduce too, for every class mix.
	ta, err := DayTraces(profiles, 7, 60, s1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := DayTraces(profiles, 7, 60, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ta, tb) {
		t.Fatal("same seed day traces differ")
	}
}

// TestEventsReachGeneratedLoad checks the event layer actually moves the
// measured workload: a flash crowd must raise the spiked cell's generated
// PRB usage well above its event-free trace.
func TestEventsReachGeneratedLoad(t *testing.T) {
	profiles := []CellProfile{DefaultProfile(Mixed)}
	// Overnight (03:00) the mixed shape sits near its floor, leaving room
	// for an 8x spike without clamping at the PRB ceiling.
	mk := func() *Generator {
		g, err := NewGenerator(phy.BW10MHz, profiles, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	sched, err := NewSchedule(profiles, 3, FlashCrowd{Cell: 0, StartSec: 0, RampSec: 0, PlateauSec: 60, DecaySec: 0, Peak: 8})
	if err != nil {
		t.Fatal(err)
	}
	spiked, plain := mk(), mk()
	if err := spiked.SetSchedule(sched, 0); err != nil {
		t.Fatal(err)
	}
	prbs := func(g *Generator) int {
		total := 0
		for tti := frame.TTI(0); tti < 2000; tti++ {
			w, err := g.Subframe(0, tti)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range w.Allocations {
				total += a.NumPRB
			}
		}
		return total
	}
	sp, pl := prbs(spiked), prbs(plain)
	if sp < 3*pl {
		t.Fatalf("flash crowd raised PRB usage only %d -> %d (want >= 3x)", pl, sp)
	}
}

func TestScheduleValidation(t *testing.T) {
	profiles := mixProfiles(4)
	if _, err := NewSchedule(nil, 12); err == nil {
		t.Fatal("empty profiles accepted")
	}
	if _, err := NewSchedule(profiles, 24); err == nil {
		t.Fatal("start hour 24 accepted")
	}
	s, err := NewSchedule(profiles, 12)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(phy.BW1_4MHz, profiles[:2], 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetSchedule(s, 3); err == nil {
		t.Fatal("out-of-range firstCell accepted")
	}
	g2, err := NewGenerator(phy.BW1_4MHz, profiles[:2], 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetSchedule(s, 0); err == nil {
		t.Fatal("start-hour mismatch accepted")
	}
	if _, err := DayTraces(profiles[:2], 1, 60, s); err == nil {
		t.Fatal("cell-count mismatch accepted in DayTraces")
	}
	// Factor outside any event window is exactly 1 for every cell.
	for cell := 0; cell < 4; cell++ {
		if f := s.Factor(cell, 100); f != 1 {
			t.Fatalf("event-free factor %v != 1", f)
		}
	}
	// Events stringify (report/log surface).
	for _, e := range []Event{
		FlashCrowd{Cell: 1, Peak: 6},
		MobilityWave{Path: []int{0, 1}, CellsPerSec: 1, WidthCells: 1, Fraction: 0.5},
		RegionalSurge{Cells: []int{2}, Factor: 3},
	} {
		if fmt.Sprint(e) == "" {
			t.Fatal("empty event description")
		}
	}
}
