package traffic

import (
	"math"
	"testing"

	"pran/internal/frame"
	"pran/internal/phy"
)

func TestShapeBounds(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		for m := 0; m < 24*60; m++ {
			tod := float64(m) / 60
			v := c.Shape(tod)
			if v <= 0 || v > 1 {
				t.Fatalf("%v shape(%v) = %v out of (0,1]", c, tod, v)
			}
		}
	}
}

func TestShapePeakHours(t *testing.T) {
	// Office peaks in working hours; residential in the evening; transport
	// at a rush hour.
	office := Office.PeakHour()
	if office < 9 || office > 17 {
		t.Fatalf("office peak at %v", office)
	}
	res := Residential.PeakHour()
	if res < 18 || res > 23 {
		t.Fatalf("residential peak at %v", res)
	}
	tr := Transport.PeakHour()
	if !((tr > 7 && tr < 10) || (tr > 16 && tr < 19)) {
		t.Fatalf("transport peak at %v", tr)
	}
}

func TestShapeNightFloor(t *testing.T) {
	// 4 AM load must be well below peak for every class (diurnal swing).
	for c := Class(0); c < numClasses; c++ {
		night := c.Shape(4)
		if night > 0.4 {
			t.Fatalf("%v at 4am = %v, too high", c, night)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{Office: "office", Residential: "residential", Mixed: "mixed", Transport: "transport"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d → %q", c, c.String())
		}
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class must still print")
	}
}

func TestDayTraceDeterminism(t *testing.T) {
	p := DefaultProfile(Office)
	a, err := DayTrace(p, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := DayTrace(p, 42, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c, _ := DayTrace(p, 43, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestDayTraceLengthAndBounds(t *testing.T) {
	p := DefaultProfile(Mixed)
	tr, err := DayTrace(p, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 8640 {
		t.Fatalf("length %d, want 8640", len(tr))
	}
	for i, v := range tr {
		if v < 0 || v > 1 {
			t.Fatalf("utilization %v at %d out of [0,1]", v, i)
		}
	}
}

func TestDayTracePeakToMean(t *testing.T) {
	// Diurnal cells must show a substantial peak-to-mean ratio — the raw
	// material of PRAN's pooling gain.
	for _, c := range []Class{Office, Residential, Transport} {
		tr, err := DayTrace(DefaultProfile(c), 7, 10)
		if err != nil {
			t.Fatal(err)
		}
		ptm := PeakToMean(tr)
		if ptm < 1.8 || ptm > 8 {
			t.Fatalf("%v peak-to-mean %v outside [1.8, 8]", c, ptm)
		}
	}
}

func TestPeakToMeanEdgeCases(t *testing.T) {
	if PeakToMean(nil) != 0 {
		t.Fatal("empty trace")
	}
	if PeakToMean([]float64{0, 0}) != 0 {
		t.Fatal("zero trace")
	}
	if v := PeakToMean([]float64{1, 1, 1}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("flat trace: %v", v)
	}
}

func TestDayTraceValidation(t *testing.T) {
	if _, err := DayTrace(CellProfile{PeakUtilization: 0}, 1, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := DayTrace(DefaultProfile(Office), 1, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestStandardMix(t *testing.T) {
	mix := StandardMix(100)
	counts := map[Class]int{}
	for _, c := range mix {
		counts[c]++
	}
	if counts[Office] != 30 || counts[Residential] != 40 || counts[Mixed] != 20 || counts[Transport] != 10 {
		t.Fatalf("mix %v", counts)
	}
	// Small prefixes stay mixed.
	small := StandardMix(10)
	seen := map[Class]bool{}
	for _, c := range small {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Fatalf("prefix of 10 covers %d classes", len(seen))
	}
}

func TestGeneratorSubframeValid(t *testing.T) {
	profiles := []CellProfile{DefaultProfile(Office), DefaultProfile(Residential)}
	g, err := NewGenerator(phy.BW10MHz, profiles, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 2 || g.Bandwidth() != phy.BW10MHz {
		t.Fatal("accessors wrong")
	}
	for tti := frame.TTI(0); tti < 500; tti++ {
		for cell := 0; cell < 2; cell++ {
			w, err := g.Subframe(cell, tti)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Validate(phy.BW10MHz); err != nil {
				t.Fatalf("cell %d %v: %v", cell, tti, err)
			}
			if w.Cell != frame.CellID(cell) || w.TTI != tti {
				t.Fatal("work identity wrong")
			}
		}
	}
}

func TestGeneratorTracksDiurnalLoad(t *testing.T) {
	// Mean generated utilization at peak hour must exceed the night one by
	// a large factor, matching the profile's shape.
	prof := DefaultProfile(Office)
	meanUtil := func(startHour float64, seed int64) float64 {
		g, err := NewGenerator(phy.BW10MHz, []CellProfile{prof}, seed, startHour)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const n = 2000
		for tti := frame.TTI(0); tti < n; tti++ {
			w, err := g.Subframe(0, tti)
			if err != nil {
				t.Fatal(err)
			}
			total += w.UsedPRB()
		}
		return float64(total) / float64(n*phy.BW10MHz.PRB())
	}
	peak := meanUtil(prof.Class.PeakHour(), 3)
	night := meanUtil(4, 3)
	if peak < 2*night {
		t.Fatalf("peak %v not well above night %v", peak, night)
	}
	if peak < 0.5 {
		t.Fatalf("peak-hour utilization %v too low for PeakUtilization=%v", peak, prof.PeakUtilization)
	}
}

func TestGeneratorUtilization(t *testing.T) {
	g, _ := NewGenerator(phy.BW10MHz, []CellProfile{DefaultProfile(Office)}, 1, 11)
	u, err := g.Utilization(0, 0)
	if err != nil || u <= 0 || u > 1 {
		t.Fatalf("utilization %v, %v", u, err)
	}
	if _, err := g.Utilization(5, 0); err == nil {
		t.Fatal("bad cell accepted")
	}
}

func TestGeneratorMCSRespondsToSNR(t *testing.T) {
	// A high-SNR cell must generate a higher average MCS than a low-SNR one.
	high := CellProfile{Class: Mixed, PeakUtilization: 0.9, SNRMeanDB: 22, SNRStdDB: 1, MeanUEsAtPeak: 6}
	low := CellProfile{Class: Mixed, PeakUtilization: 0.9, SNRMeanDB: 2, SNRStdDB: 1, MeanUEsAtPeak: 6}
	g, err := NewGenerator(phy.BW10MHz, []CellProfile{high, low}, 9, 12)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(cell int) float64 {
		var sum, n float64
		for tti := frame.TTI(0); tti < 1000; tti++ {
			w, _ := g.Subframe(cell, tti)
			for _, a := range w.Allocations {
				sum += float64(a.MCS)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no allocations generated")
		}
		return sum / n
	}
	if hi, lo := avg(0), avg(1); hi <= lo+5 {
		t.Fatalf("high-SNR cell MCS %v not well above low-SNR %v", hi, lo)
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(phy.Bandwidth(7), []CellProfile{DefaultProfile(Office)}, 1, 0); err == nil {
		t.Fatal("bad bandwidth accepted")
	}
	if _, err := NewGenerator(phy.BW10MHz, nil, 1, 0); err == nil {
		t.Fatal("no profiles accepted")
	}
	if _, err := NewGenerator(phy.BW10MHz, []CellProfile{{}}, 1, 0); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := NewGenerator(phy.BW10MHz, []CellProfile{DefaultProfile(Office)}, 1, 25); err == nil {
		t.Fatal("bad start hour accepted")
	}
	g, _ := NewGenerator(phy.BW10MHz, []CellProfile{DefaultProfile(Office)}, 1, 0)
	if _, err := g.Subframe(2, 0); err == nil {
		t.Fatal("bad cell index accepted")
	}
}

func TestDefaultProfilesValid(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		if err := DefaultProfile(c).Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
	}
}
