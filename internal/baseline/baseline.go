// Package baseline implements the provisioning strategies PRAN is compared
// against in the pooling experiments (E4):
//
//   - Per-cell static: today's distributed RAN — every cell gets dedicated
//     baseband hardware sized for its own peak. Capacity is stranded
//     whenever a cell idles.
//   - Static C-RAN pool: one shared pool, but sized once for the worst
//     aggregate ever seen (no elasticity).
//   - PRAN pooled: capacity follows aggregate demand with headroom, sized
//     by the same scaling policy the controller runs.
//   - Oracle: the information-theoretic floor — capacity exactly equal to
//     the aggregate peak, no headroom, known in advance.
//
// All functions consume per-cell compute-demand traces in reference-core
// fractions (internal/cluster.CostModel.UtilizationDemand over
// internal/traffic.DayTrace samples).
//
// Concurrency: the package is purely functional — every entry point reads
// its inputs and returns fresh values, holding no package state, so callers
// may invoke any function from any number of goroutines concurrently.
package baseline

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadTraces indicates empty or ragged input traces.
var ErrBadTraces = errors.New("baseline: traces must be non-empty and equal length")

// validate checks trace shape and returns the common length.
func validate(traces [][]float64) (int, error) {
	if len(traces) == 0 || len(traces[0]) == 0 {
		return 0, ErrBadTraces
	}
	n := len(traces[0])
	for i, tr := range traces {
		if len(tr) != n {
			return 0, fmt.Errorf("trace %d has %d samples, want %d: %w", i, len(tr), n, ErrBadTraces)
		}
	}
	return n, nil
}

// PerCellStaticCores returns the core count of per-cell peak provisioning:
// each cell independently gets ⌈its own peak × (1+margin)⌉ dedicated cores.
func PerCellStaticCores(traces [][]float64, margin float64) (int, error) {
	if _, err := validate(traces); err != nil {
		return 0, err
	}
	total := 0
	for _, tr := range traces {
		peak := 0.0
		for _, v := range tr {
			if v > peak {
				peak = v
			}
		}
		total += int(math.Ceil(peak * (1 + margin)))
	}
	return total, nil
}

// AggregateTrace sums per-cell traces into a pool-level demand trace.
func AggregateTrace(traces [][]float64) ([]float64, error) {
	n, err := validate(traces)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for _, tr := range traces {
		for i, v := range tr {
			out[i] += v
		}
	}
	return out, nil
}

// StaticPoolCores sizes a non-elastic shared pool: ⌈aggregate peak ×
// (1+margin)⌉ cores, provisioned permanently.
func StaticPoolCores(traces [][]float64, margin float64) (int, error) {
	agg, err := AggregateTrace(traces)
	if err != nil {
		return 0, err
	}
	peak := 0.0
	for _, v := range agg {
		if v > peak {
			peak = v
		}
	}
	return int(math.Ceil(peak * (1 + margin))), nil
}

// OracleCores returns the aggregate-peak floor with no margin.
func OracleCores(traces [][]float64) (int, error) {
	return StaticPoolCores(traces, 0)
}

// PooledResult describes elastic (PRAN) provisioning over a trace.
type PooledResult struct {
	// PeakCores is the maximum cores the elastic pool ever held active —
	// the capacity that must exist.
	PeakCores int
	// MeanCores is the time-average active cores — what is actually
	// consumed (energy, amortized cost).
	MeanCores float64
	// CoreSamples is the per-sample active core series.
	CoreSamples []int
}

// PRANPooledCores simulates elastic pooling over the aggregate trace: each
// sample, the pool holds ⌈aggregate demand × (1+headroom)⌉ cores (scale-up
// immediate, scale-down with the same one-sided hysteresis the controller
// uses, expressed here as a trailing-max window of lagSamples).
func PRANPooledCores(traces [][]float64, headroom float64, lagSamples int) (PooledResult, error) {
	agg, err := AggregateTrace(traces)
	if err != nil {
		return PooledResult{}, err
	}
	if lagSamples < 1 {
		lagSamples = 1
	}
	res := PooledResult{CoreSamples: make([]int, len(agg))}
	sum := 0.0
	for i := range agg {
		// Trailing max over the lag window models slow scale-down.
		hi := agg[i]
		for j := i - lagSamples + 1; j < i; j++ {
			if j >= 0 && agg[j] > hi {
				hi = agg[j]
			}
		}
		cores := int(math.Ceil(hi * (1 + headroom)))
		if cores < 1 {
			cores = 1
		}
		res.CoreSamples[i] = cores
		if cores > res.PeakCores {
			res.PeakCores = cores
		}
		sum += float64(cores)
	}
	res.MeanCores = sum / float64(len(agg))
	return res, nil
}

// MultiplexingGain is the headline PRAN number: per-cell static cores
// divided by what the pool actually needs.
func MultiplexingGain(staticCores int, pooledCores float64) float64 {
	if pooledCores <= 0 {
		return 0
	}
	return float64(staticCores) / pooledCores
}
