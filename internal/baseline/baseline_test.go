package baseline

import (
	"errors"
	"math"
	"testing"

	"pran/internal/cluster"
	"pran/internal/phy"
	"pran/internal/traffic"
)

func TestValidation(t *testing.T) {
	if _, err := PerCellStaticCores(nil, 0); !errors.Is(err, ErrBadTraces) {
		t.Fatal("nil traces accepted")
	}
	if _, err := PerCellStaticCores([][]float64{{}}, 0); !errors.Is(err, ErrBadTraces) {
		t.Fatal("empty trace accepted")
	}
	if _, err := AggregateTrace([][]float64{{1, 2}, {1}}); !errors.Is(err, ErrBadTraces) {
		t.Fatal("ragged traces accepted")
	}
	if _, err := StaticPoolCores([][]float64{{1}, {1, 2}}, 0); err == nil {
		t.Fatal("ragged traces accepted by pool sizing")
	}
	if _, err := PRANPooledCores(nil, 0, 1); err == nil {
		t.Fatal("nil traces accepted by pooled sizing")
	}
}

func TestKnownArithmetic(t *testing.T) {
	// Two anti-correlated cells: each peaks at 2 cores but never together.
	a := []float64{2, 0.2, 0.2, 2}
	b := []float64{0.2, 2, 2, 0.2}
	traces := [][]float64{a, b}

	static, err := PerCellStaticCores(traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	if static != 4 {
		t.Fatalf("static %d, want 4", static)
	}
	oracle, err := OracleCores(traces)
	if err != nil {
		t.Fatal(err)
	}
	if oracle != 3 { // aggregate peak 2.2 → 3
		t.Fatalf("oracle %d, want 3", oracle)
	}
	agg, _ := AggregateTrace(traces)
	if agg[0] != 2.2 || agg[1] != 2.2 {
		t.Fatalf("aggregate %v", agg)
	}
	pool, err := StaticPoolCores(traces, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pool != 4 { // 2.2 × 1.5 = 3.3 → 4
		t.Fatalf("static pool %d, want 4", pool)
	}
}

func TestPooledElasticity(t *testing.T) {
	// Demand steps up then down; the elastic pool must follow up instantly
	// and down with lag.
	tr := [][]float64{{1, 1, 5, 5, 1, 1, 1, 1}}
	res, err := PRANPooledCores(tr, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakCores != 5 {
		t.Fatalf("peak %d", res.PeakCores)
	}
	// Samples 0,1 hold 1 core; 2,3 hold 5; 4,5 still ≥ 5 (lag window of 3
	// covers indices 2,3); 6 drops.
	want := []int{1, 1, 5, 5, 5, 5, 1, 1}
	for i, w := range want {
		if res.CoreSamples[i] != w {
			t.Fatalf("sample %d: %d, want %d (%v)", i, res.CoreSamples[i], w, res.CoreSamples)
		}
	}
	if res.MeanCores <= 1 || res.MeanCores >= 5 {
		t.Fatalf("mean %v", res.MeanCores)
	}
}

func TestPooledNeverBelowOne(t *testing.T) {
	tr := [][]float64{{0, 0, 0}}
	res, err := PRANPooledCores(tr, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.CoreSamples {
		if c < 1 {
			t.Fatal("pool dropped below one core")
		}
	}
}

func TestMultiplexingGain(t *testing.T) {
	if MultiplexingGain(10, 5) != 2 {
		t.Fatal("gain arithmetic")
	}
	if MultiplexingGain(10, 0) != 0 {
		t.Fatal("zero pool")
	}
}

// TestDiurnalPoolingGainShape is the unit-level preview of experiment E4:
// with a realistic diurnal mix, pooling must beat per-cell static
// provisioning by a visible factor.
func TestDiurnalPoolingGainShape(t *testing.T) {
	model := cluster.DefaultCostModel()
	const nCells = 30
	classes := traffic.StandardMix(nCells)
	traces := make([][]float64, nCells)
	for i := 0; i < nCells; i++ {
		prof := traffic.DefaultProfile(classes[i])
		util, err := traffic.DayTrace(prof, int64(i), 60)
		if err != nil {
			t.Fatal(err)
		}
		demand := make([]float64, len(util))
		for j, u := range util {
			demand[j] = model.UtilizationDemand(phy.BW20MHz, 2, u, phy.MCSForSNR(prof.SNRMeanDB), prof.SNRMeanDB)
		}
		traces[i] = demand
	}
	static, err := PerCellStaticCores(traces, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := PRANPooledCores(traces, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := OracleCores(traces)
	if err != nil {
		t.Fatal(err)
	}
	gainPeak := MultiplexingGain(static, float64(pooled.PeakCores))
	gainMean := MultiplexingGain(static, pooled.MeanCores)
	if gainPeak < 1.2 {
		t.Fatalf("peak pooling gain %.2f below 1.2 — diversity lost", gainPeak)
	}
	if gainMean < 1.8 {
		t.Fatalf("mean pooling gain %.2f below 1.8", gainMean)
	}
	if pooled.PeakCores < oracle {
		t.Fatalf("elastic pool %d below oracle %d — impossible", pooled.PeakCores, oracle)
	}
	if math.IsNaN(gainPeak) || math.IsInf(gainPeak, 0) {
		t.Fatal("gain not finite")
	}
}
