package frame

import (
	"fmt"

	"pran/internal/phy"
)

// Grid is one cell's frequency-domain resource grid for a single subframe:
// SymbolsPerSubframe OFDM symbols × (12 × PRB) subcarriers of constellation
// symbols. Two symbol indices are reserved for reference signals and carry
// no UE data, matching phy.DataREsPerPRB.
//
// The grid is the hand-off format between the fronthaul (which transports
// it, possibly compressed, as I/Q) and the transport processors (which read
// or write per-UE allocations). A Grid is reused across subframes via Reset.
type Grid struct {
	bw   phy.Bandwidth
	sc   int // subcarriers = 12 × PRB
	data []complex128
}

// Reference-signal symbol indices within the subframe (simplified cell-
// specific RS layout: one per slot).
var referenceSymbols = [phy.ReferenceSymbolsPerSubframe]int{3, 10}

// IsReferenceSymbol reports whether OFDM symbol index l carries reference
// signals rather than data.
func IsReferenceSymbol(l int) bool {
	for _, r := range referenceSymbols {
		if l == r {
			return true
		}
	}
	return false
}

// NewGrid allocates a grid for the bandwidth.
func NewGrid(bw phy.Bandwidth) (*Grid, error) {
	if err := bw.Validate(); err != nil {
		return nil, err
	}
	sc := bw.PRB() * phy.SubcarriersPerPRB
	return &Grid{bw: bw, sc: sc, data: make([]complex128, sc*phy.SymbolsPerSubframe)}, nil
}

// Bandwidth returns the grid's bandwidth configuration.
func (g *Grid) Bandwidth() phy.Bandwidth { return g.bw }

// Subcarriers returns the number of active subcarriers per symbol.
func (g *Grid) Subcarriers() int { return g.sc }

// Reset zeroes all resource elements.
func (g *Grid) Reset() {
	for i := range g.data {
		g.data[i] = 0
	}
}

// Symbol returns the subcarrier slice of OFDM symbol l (0–13). The slice
// aliases the grid; writes are visible to subsequent reads.
func (g *Grid) Symbol(l int) ([]complex128, error) {
	if l < 0 || l >= phy.SymbolsPerSubframe {
		return nil, fmt.Errorf("frame: symbol %d out of [0,%d): %w", l, phy.SymbolsPerSubframe, phy.ErrBadParameter)
	}
	return g.data[l*g.sc : (l+1)*g.sc], nil
}

// allocationREs returns the number of data REs an allocation occupies.
func allocationREs(a Allocation) int { return a.NumPRB * phy.DataREsPerPRB }

// Place writes a UE's constellation symbols into the allocation's resource
// elements in frequency-first order, skipping reference symbols. len(syms)
// must equal NumPRB × DataREsPerPRB.
func (g *Grid) Place(a Allocation, syms []complex128) error {
	if err := a.Validate(g.bw); err != nil {
		return err
	}
	if len(syms) != allocationREs(a) {
		return fmt.Errorf("frame: %d symbols for %d REs: %w", len(syms), allocationREs(a), phy.ErrBadParameter)
	}
	scFirst := a.FirstPRB * phy.SubcarriersPerPRB
	scCount := a.NumPRB * phy.SubcarriersPerPRB
	i := 0
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		if IsReferenceSymbol(l) {
			continue
		}
		base := l*g.sc + scFirst
		copy(g.data[base:base+scCount], syms[i:i+scCount])
		i += scCount
	}
	return nil
}

// Extract reads a UE's resource elements into dst (len NumPRB ×
// DataREsPerPRB), the inverse of Place.
func (g *Grid) Extract(dst []complex128, a Allocation) error {
	if err := a.Validate(g.bw); err != nil {
		return err
	}
	if len(dst) != allocationREs(a) {
		return fmt.Errorf("frame: dst %d for %d REs: %w", len(dst), allocationREs(a), phy.ErrBadParameter)
	}
	scFirst := a.FirstPRB * phy.SubcarriersPerPRB
	scCount := a.NumPRB * phy.SubcarriersPerPRB
	i := 0
	for l := 0; l < phy.SymbolsPerSubframe; l++ {
		if IsReferenceSymbol(l) {
			continue
		}
		base := l*g.sc + scFirst
		copy(dst[i:i+scCount], g.data[base:base+scCount])
		i += scCount
	}
	return nil
}

// Raw exposes the full grid backing slice (symbol-major). The fronthaul
// uses it to serialize the subframe as I/Q; treat it as read-only unless
// you own the grid.
func (g *Grid) Raw() []complex128 { return g.data }

// PRBAllocator packs per-UE PRB demands into a subframe left-to-right
// (first-fit). It is the minimal scheduler the workload generator and the
// examples need; PRAN programs can replace it through internal/ranapi.
type PRBAllocator struct {
	bw   phy.Bandwidth
	next int
}

// NewPRBAllocator returns an allocator for one subframe of the bandwidth.
func NewPRBAllocator(bw phy.Bandwidth) *PRBAllocator {
	return &PRBAllocator{bw: bw}
}

// Remaining returns the number of unallocated PRBs.
func (p *PRBAllocator) Remaining() int { return p.bw.PRB() - p.next }

// Take reserves n contiguous PRBs and returns the first index, or false if
// the subframe cannot fit them.
func (p *PRBAllocator) Take(n int) (int, bool) {
	if n < 1 || p.next+n > p.bw.PRB() {
		return 0, false
	}
	first := p.next
	p.next += n
	return first, true
}

// Reset releases all PRBs for the next subframe.
func (p *PRBAllocator) Reset() { p.next = 0 }
