package frame

import (
	"math"

	"pran/internal/phy"
)

// Cell-specific reference signals (pilots): the two reference symbols of
// each subframe carry a known QPSK sequence derived from the cell's PCI and
// the TTI, spanning every subcarrier. The receiver compares what arrived
// against this sequence to estimate the channel response before equalizing
// the data symbols.

// Pilots writes the known pilot sequence for reference symbol l of the
// given cell and TTI into dst (one value per subcarrier). The sequence is
// a unit-energy QPSK mapping of a Gold sequence seeded by (PCI, subframe,
// symbol), matching 36.211's cell-specific RS structure in spirit.
func Pilots(dst []complex128, pci uint16, tti TTI, l int) {
	cinit := uint32(pci)<<13 | uint32(tti.Subframe())<<4 | uint32(l&0xF) | 1<<28
	g := phy.NewGoldSequence(cinit)
	s := 1 / math.Sqrt2
	for i := range dst {
		re, im := s, s
		if g.Next() == 1 {
			re = -s
		}
		if g.Next() == 1 {
			im = -s
		}
		dst[i] = complex(re, im)
	}
}

// PlacePilots fills the grid's reference symbols with the cell's pilot
// sequence for the TTI.
func (g *Grid) PlacePilots(pci uint16, tti TTI) {
	for _, l := range referenceSymbols {
		row, err := g.Symbol(l)
		if err != nil {
			continue
		}
		Pilots(row, pci, tti, l)
	}
}

// ReferenceSymbolIndices returns the subframe's reference symbol indices.
func ReferenceSymbolIndices() []int {
	out := make([]int, len(referenceSymbols))
	copy(out, referenceSymbols[:])
	return out
}
