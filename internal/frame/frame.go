// Package frame models LTE radio framing for the PRAN data plane: cells,
// transmission time intervals (TTIs), per-UE resource-block allocations, and
// the per-subframe resource grid that carries constellation symbols between
// the fronthaul and the transport-channel processors.
//
// The package is deliberately independent of both the DSP (internal/phy) and
// the execution machinery (internal/dataplane): it only describes *what* is
// scheduled where, which lets the traffic generator, the simulator, and the
// real data plane share one vocabulary.
//
// Concurrency: everything here is passive data. Values are safe to share
// between goroutines as long as at most one mutates at a time; in practice
// a SubframeWork and its Grid are built by one producer and handed off to
// the data plane, which treats them as read-only.
package frame

import (
	"errors"
	"fmt"

	"pran/internal/phy"
)

// Common sentinel errors.
var (
	// ErrOverlap indicates two allocations claim the same resource blocks.
	ErrOverlap = errors.New("allocation overlap")
	// ErrBounds indicates an allocation extends past the cell bandwidth.
	ErrBounds = errors.New("allocation out of bounds")
)

// TTI is an absolute subframe counter since system start (1 TTI = 1 ms).
type TTI uint64

// SFN returns the 10-bit LTE system frame number for the TTI.
func (t TTI) SFN() uint16 { return uint16(t / 10 % 1024) }

// Subframe returns the subframe index within the frame (0–9).
func (t TTI) Subframe() uint8 { return uint8(t % 10) }

// TimeNs returns the TTI's start time in nanoseconds since system start.
func (t TTI) TimeNs() uint64 { return uint64(t) * phy.SubframeDurationNs }

// String implements fmt.Stringer.
func (t TTI) String() string {
	return fmt.Sprintf("tti=%d (sfn=%d sf=%d)", uint64(t), t.SFN(), t.Subframe())
}

// CellID identifies a cell (sector) within the PRAN deployment.
type CellID uint16

// CellConfig is the static radio configuration of one cell.
type CellConfig struct {
	// ID is the PRAN-internal cell identifier.
	ID CellID
	// PCI is the physical cell identity used in scrambling (0–503).
	PCI uint16
	// Bandwidth selects the channel bandwidth (PRB count, FFT size).
	Bandwidth phy.Bandwidth
	// Antennas is the number of receive antennas at the RRH.
	Antennas int
}

// Validate checks the configuration.
func (c CellConfig) Validate() error {
	if err := c.Bandwidth.Validate(); err != nil {
		return fmt.Errorf("cell %d: %w", c.ID, err)
	}
	if c.PCI > 503 {
		return fmt.Errorf("cell %d: PCI %d out of range: %w", c.ID, c.PCI, phy.ErrBadParameter)
	}
	if c.Antennas < 1 || c.Antennas > 8 {
		return fmt.Errorf("cell %d: %d antennas out of [1,8]: %w", c.ID, c.Antennas, phy.ErrBadParameter)
	}
	return nil
}

// RNTI is a radio network temporary identifier naming one UE in a cell.
type RNTI uint16

// Allocation assigns a contiguous range of PRBs in one subframe to one UE's
// transport block.
type Allocation struct {
	// RNTI identifies the UE within the cell.
	RNTI RNTI
	// FirstPRB is the first allocated resource block (0-based).
	FirstPRB int
	// NumPRB is the number of contiguous resource blocks.
	NumPRB int
	// MCS selects modulation and code rate.
	MCS phy.MCS
	// Dir is the transport direction.
	Dir phy.Direction
	// HARQProcess is the HARQ process number (0–7).
	HARQProcess uint8
	// RV is the redundancy version of this (re)transmission (0–3).
	RV uint8
	// SNRdB is the estimated link SNR the receiver should demodulate at.
	SNRdB float64
}

// Validate checks the allocation against a cell's bandwidth.
func (a Allocation) Validate(bw phy.Bandwidth) error {
	if a.NumPRB < 1 {
		return fmt.Errorf("alloc rnti=%d: NumPRB=%d: %w", a.RNTI, a.NumPRB, phy.ErrBadParameter)
	}
	if a.FirstPRB < 0 || a.FirstPRB+a.NumPRB > bw.PRB() {
		return fmt.Errorf("alloc rnti=%d: PRBs [%d,%d) exceed %d: %w",
			a.RNTI, a.FirstPRB, a.FirstPRB+a.NumPRB, bw.PRB(), ErrBounds)
	}
	if err := a.MCS.Validate(); err != nil {
		return err
	}
	if a.HARQProcess > 7 {
		return fmt.Errorf("alloc rnti=%d: HARQ process %d: %w", a.RNTI, a.HARQProcess, phy.ErrBadParameter)
	}
	if a.RV > 3 {
		return fmt.Errorf("alloc rnti=%d: RV %d: %w", a.RNTI, a.RV, phy.ErrBadParameter)
	}
	return nil
}

// TransportBlockSize returns the allocation's TB payload size in bits.
func (a Allocation) TransportBlockSize() (int, error) {
	return a.MCS.TransportBlockSize(a.NumPRB)
}

// SubframeWork is everything the data plane needs to process one cell's
// subframe: the identity of the subframe plus all UE allocations in it.
type SubframeWork struct {
	// Cell identifies the cell this subframe belongs to.
	Cell CellID
	// TTI is the absolute subframe counter.
	TTI TTI
	// Allocations lists the scheduled UEs, non-overlapping in PRB space.
	Allocations []Allocation
}

// Validate checks every allocation and their pairwise disjointness.
func (w SubframeWork) Validate(bw phy.Bandwidth) error {
	used := make([]bool, bw.PRB())
	for _, a := range w.Allocations {
		if err := a.Validate(bw); err != nil {
			return err
		}
		for p := a.FirstPRB; p < a.FirstPRB+a.NumPRB; p++ {
			if used[p] {
				return fmt.Errorf("cell %d %v: PRB %d claimed twice: %w", w.Cell, w.TTI, p, ErrOverlap)
			}
			used[p] = true
		}
	}
	return nil
}

// UsedPRB returns the total number of allocated resource blocks.
func (w SubframeWork) UsedPRB() int {
	n := 0
	for _, a := range w.Allocations {
		n += a.NumPRB
	}
	return n
}
