package frame

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pran/internal/phy"
)

func TestTTIDerivation(t *testing.T) {
	cases := []struct {
		tti TTI
		sfn uint16
		sf  uint8
	}{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {10239, 1023, 9}, {10240, 0, 0}, {10245, 0, 5},
	}
	for _, c := range cases {
		if c.tti.SFN() != c.sfn || c.tti.Subframe() != c.sf {
			t.Fatalf("%d: sfn=%d sf=%d, want %d/%d", c.tti, c.tti.SFN(), c.tti.Subframe(), c.sfn, c.sf)
		}
	}
	if TTI(5).TimeNs() != 5_000_000 {
		t.Fatal("TTI time wrong")
	}
	if TTI(3).String() == "" {
		t.Fatal("empty String")
	}
}

func TestCellConfigValidate(t *testing.T) {
	good := CellConfig{ID: 1, PCI: 100, Bandwidth: phy.BW10MHz, Antennas: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CellConfig{
		{ID: 1, PCI: 504, Bandwidth: phy.BW10MHz, Antennas: 2},
		{ID: 1, PCI: 0, Bandwidth: phy.Bandwidth(7), Antennas: 2},
		{ID: 1, PCI: 0, Bandwidth: phy.BW10MHz, Antennas: 0},
		{ID: 1, PCI: 0, Bandwidth: phy.BW10MHz, Antennas: 9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestAllocationValidate(t *testing.T) {
	bw := phy.BW10MHz // 50 PRB
	ok := Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 50, MCS: 10}
	if err := ok.Validate(bw); err != nil {
		t.Fatal(err)
	}
	cases := []Allocation{
		{RNTI: 1, FirstPRB: 0, NumPRB: 0, MCS: 10},
		{RNTI: 1, FirstPRB: 45, NumPRB: 6, MCS: 10},
		{RNTI: 1, FirstPRB: -1, NumPRB: 5, MCS: 10},
		{RNTI: 1, FirstPRB: 0, NumPRB: 5, MCS: 30},
		{RNTI: 1, FirstPRB: 0, NumPRB: 5, MCS: 10, HARQProcess: 8},
		{RNTI: 1, FirstPRB: 0, NumPRB: 5, MCS: 10, RV: 4},
	}
	for i, a := range cases {
		if err := a.Validate(bw); err == nil {
			t.Fatalf("bad allocation %d accepted", i)
		}
	}
}

func TestSubframeWorkOverlap(t *testing.T) {
	w := SubframeWork{
		Cell: 1, TTI: 7,
		Allocations: []Allocation{
			{RNTI: 1, FirstPRB: 0, NumPRB: 10, MCS: 5},
			{RNTI: 2, FirstPRB: 10, NumPRB: 10, MCS: 5},
		},
	}
	if err := w.Validate(phy.BW10MHz); err != nil {
		t.Fatal(err)
	}
	if w.UsedPRB() != 20 {
		t.Fatalf("used %d", w.UsedPRB())
	}
	w.Allocations = append(w.Allocations, Allocation{RNTI: 3, FirstPRB: 19, NumPRB: 2, MCS: 5})
	if err := w.Validate(phy.BW10MHz); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap not detected: %v", err)
	}
}

func TestGridPlaceExtractRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := NewGrid(phy.BW10MHz)
		if err != nil {
			return false
		}
		nprb := 1 + rng.Intn(25)
		first := rng.Intn(50 - nprb + 1)
		a := Allocation{RNTI: 9, FirstPRB: first, NumPRB: nprb, MCS: 10}
		syms := make([]complex128, nprb*phy.DataREsPerPRB)
		for i := range syms {
			syms[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if err := g.Place(a, syms); err != nil {
			return false
		}
		out := make([]complex128, len(syms))
		if err := g.Extract(out, a); err != nil {
			return false
		}
		for i := range syms {
			if out[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGridNonOverlappingAllocationsIndependent(t *testing.T) {
	g, _ := NewGrid(phy.BW5MHz)
	a := Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 5, MCS: 4}
	b := Allocation{RNTI: 2, FirstPRB: 5, NumPRB: 5, MCS: 4}
	as := make([]complex128, 5*phy.DataREsPerPRB)
	bs := make([]complex128, 5*phy.DataREsPerPRB)
	for i := range as {
		as[i] = 1
		bs[i] = 2
	}
	if err := g.Place(a, as); err != nil {
		t.Fatal(err)
	}
	if err := g.Place(b, bs); err != nil {
		t.Fatal(err)
	}
	outA := make([]complex128, len(as))
	if err := g.Extract(outA, a); err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		if outA[i] != 1 {
			t.Fatalf("allocation A clobbered at %d", i)
		}
	}
}

func TestGridReferenceSymbolsUntouched(t *testing.T) {
	g, _ := NewGrid(phy.BW5MHz)
	a := Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 25, MCS: 4}
	syms := make([]complex128, 25*phy.DataREsPerPRB)
	for i := range syms {
		syms[i] = 1
	}
	if err := g.Place(a, syms); err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{3, 10} {
		row, err := g.Symbol(l)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range row {
			if v != 0 {
				t.Fatalf("reference symbol %d subcarrier %d written: %v", l, i, v)
			}
		}
	}
	if !IsReferenceSymbol(3) || IsReferenceSymbol(0) {
		t.Fatal("IsReferenceSymbol misclassifies")
	}
}

func TestGridErrors(t *testing.T) {
	g, _ := NewGrid(phy.BW5MHz)
	if _, err := g.Symbol(14); err == nil {
		t.Fatal("symbol 14 accepted")
	}
	if _, err := g.Symbol(-1); err == nil {
		t.Fatal("symbol -1 accepted")
	}
	a := Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 2, MCS: 4}
	if err := g.Place(a, make([]complex128, 3)); err == nil {
		t.Fatal("wrong symbol count accepted")
	}
	if err := g.Extract(make([]complex128, 3), a); err == nil {
		t.Fatal("wrong dst size accepted")
	}
	if _, err := NewGrid(phy.Bandwidth(9)); err == nil {
		t.Fatal("bad bandwidth accepted")
	}
	g.Reset()
}

func TestPRBAllocator(t *testing.T) {
	p := NewPRBAllocator(phy.BW5MHz) // 25 PRB
	if p.Remaining() != 25 {
		t.Fatal("initial remaining wrong")
	}
	first, ok := p.Take(10)
	if !ok || first != 0 {
		t.Fatalf("take 10: %d %v", first, ok)
	}
	second, ok := p.Take(15)
	if !ok || second != 10 {
		t.Fatalf("take 15: %d %v", second, ok)
	}
	if _, ok := p.Take(1); ok {
		t.Fatal("overcommit allowed")
	}
	p.Reset()
	if got, ok := p.Take(25); !ok || got != 0 {
		t.Fatal("reset broken")
	}
	if _, ok := p.Take(0); ok {
		t.Fatal("n=0 accepted")
	}
}

func TestAllocationTBS(t *testing.T) {
	a := Allocation{RNTI: 1, FirstPRB: 0, NumPRB: 10, MCS: 15}
	tbs, err := a.TransportBlockSize()
	if err != nil || tbs <= 0 {
		t.Fatalf("TBS: %d, %v", tbs, err)
	}
	want, _ := phy.MCS(15).TransportBlockSize(10)
	if tbs != want {
		t.Fatalf("TBS %d != phy %d", tbs, want)
	}
}
