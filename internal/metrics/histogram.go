// Package metrics provides the measurement primitives used across the PRAN
// reproduction: streaming summaries, log-scale latency histograms with
// percentile queries, Jain's fairness index, and simple time series used by
// the controller's load monitor and by the benchmark harness.
//
// Concurrency: all types are unsynchronized and belong to one goroutine at
// a time. The intended pattern — which the data plane follows — is one
// instance per worker goroutine, merged at collection points after the
// workers quiesce; that keeps the hot path lock-free by construction rather
// than by fine-grained synchronization.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ErrSpecMismatch marks an attempt to merge histograms (or serialized
// histogram states) whose bucket specifications differ. Aggregation points —
// the telemetry snapshot merger, the cluster-wide scrape — must surface it
// rather than mis-bin observations.
var ErrSpecMismatch = errors.New("metrics: histogram spec mismatch")

// Histogram is a log-scale histogram tuned for latency-like, non-negative
// measurements spanning several orders of magnitude (nanoseconds to seconds).
//
// The zero value is ready to use with the default range [1µs, 16s] at 64
// buckets per octave-group; use NewHistogram to choose a different range.
type Histogram struct {
	min, max float64 // value range covered by the buckets
	buckets  []uint64
	count    uint64
	sum      float64
	sumSq    float64
	low      uint64 // observations below min
	high     uint64 // observations above max
	vMin     float64
	vMax     float64
	scale    float64 // precomputed: buckets / log(max/min)
}

const defaultHistBuckets = 512

// NewHistogram returns a histogram covering [min, max] with n log-spaced
// buckets. It panics if the range or bucket count is invalid, since that is
// a programming error, not a runtime condition.
func NewHistogram(min, max float64, n int) *Histogram {
	if !(min > 0) || !(max > min) || n <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram spec min=%v max=%v n=%d", min, max, n))
	}
	h := &Histogram{min: min, max: max, buckets: make([]uint64, n)}
	h.scale = float64(n) / math.Log(max/min)
	h.vMin = math.Inf(1)
	h.vMax = math.Inf(-1)
	return h
}

func (h *Histogram) lazyInit() {
	if h.buckets == nil {
		*h = *NewHistogram(1e-6, 16, defaultHistBuckets)
	}
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64) {
	h.lazyInit()
	h.count++
	h.sum += v
	h.sumSq += v * v
	if v < h.vMin {
		h.vMin = v
	}
	if v > h.vMax {
		h.vMax = v
	}
	switch {
	case v < h.min:
		h.low++
	case v >= h.max:
		h.high++
	default:
		i := int(math.Log(v/h.min) * h.scale)
		if i < 0 {
			i = 0
		}
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// ObserveDuration records a time.Duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Stddev returns the population standard deviation, or 0 if empty.
func (h *Histogram) Stddev() float64 {
	if h.count == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.vMin
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.vMax
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) using the
// bucket upper edges; exact observations below/above the covered range clamp
// to the range boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	h.lazyInit()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := q * float64(h.count)
	acc := float64(h.low)
	if acc >= target {
		return h.min
	}
	for i, c := range h.buckets {
		acc += float64(c)
		if acc >= target {
			// Upper edge of bucket i.
			return h.min * math.Exp(float64(i+1)/h.scale)
		}
	}
	return h.Max()
}

// Merge adds all observations recorded by other into h. The two histograms
// must have identical bucket layouts (use the same constructor arguments);
// a cross-spec merge is an explicit error naming both layouts, never a
// silent mis-binning. The low/high overflow counters merge like any bucket.
func (h *Histogram) Merge(other *Histogram) error {
	h.lazyInit()
	other.lazyInit()
	if len(h.buckets) != len(other.buckets) || h.min != other.min || h.max != other.max {
		return fmt.Errorf("metrics: cannot merge histogram spec [%g, %g]/%d with [%g, %g]/%d: %w",
			h.min, h.max, len(h.buckets), other.min, other.max, len(other.buckets), ErrSpecMismatch)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	h.sumSq += other.sumSq
	h.low += other.low
	h.high += other.high
	if other.count > 0 {
		if other.vMin < h.vMin {
			h.vMin = other.vMin
		}
		if other.vMax > h.vMax {
			h.vMax = other.vMax
		}
	}
	return nil
}

// Reset clears all recorded observations while keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.low, h.high = 0, 0, 0
	h.sum, h.sumSq = 0, 0
	h.vMin = math.Inf(1)
	h.vMax = math.Inf(-1)
}

// HistogramState is the exported raw state of a Histogram, used to ship
// histograms across process boundaries (telemetry scrapes, JSON exposition)
// and merge them on the far side. VMin/VMax are reported as 0 when Count is
// 0 so the struct always JSON-encodes (the internal empty-histogram extrema
// are ±Inf, which encoding/json rejects).
type HistogramState struct {
	// Min and Max are the bucket range spec; BucketN its resolution.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Buckets holds the per-bucket observation counts.
	Buckets []uint64 `json:"buckets"`
	// Count is the total number of observations, including overflows.
	Count uint64 `json:"count"`
	// Low and High count observations below Min and at/above Max.
	Low  uint64 `json:"low"`
	High uint64 `json:"high"`
	// Sum and SumSq accumulate Σv and Σv².
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sum_sq"`
	// VMin and VMax are the observed extrema (0 when Count is 0).
	VMin float64 `json:"vmin"`
	VMax float64 `json:"vmax"`
}

// State exports the histogram's raw state.
func (h *Histogram) State() HistogramState {
	h.lazyInit()
	s := HistogramState{
		Min:     h.min,
		Max:     h.max,
		Buckets: append([]uint64(nil), h.buckets...),
		Count:   h.count,
		Low:     h.low,
		High:    h.high,
		Sum:     h.sum,
		SumSq:   h.sumSq,
	}
	if h.count > 0 {
		s.VMin, s.VMax = h.vMin, h.vMax
	}
	return s
}

// FromState rebuilds a Histogram from exported state. The spec must be
// valid (same constraints as NewHistogram); malformed state is an error, not
// a panic, since it typically arrives over the wire.
func FromState(s HistogramState) (*Histogram, error) {
	if !(s.Min > 0) || !(s.Max > s.Min) || len(s.Buckets) == 0 {
		return nil, fmt.Errorf("metrics: invalid histogram state min=%v max=%v n=%d: %w",
			s.Min, s.Max, len(s.Buckets), ErrSpecMismatch)
	}
	h := NewHistogram(s.Min, s.Max, len(s.Buckets))
	copy(h.buckets, s.Buckets)
	h.count, h.low, h.high = s.Count, s.Low, s.High
	h.sum, h.sumSq = s.Sum, s.SumSq
	if s.Count > 0 {
		h.vMin, h.vMax = s.VMin, s.VMax
	}
	return h, nil
}

// MergeState folds exported histogram state into h, with the same spec
// discipline as Merge.
func (h *Histogram) MergeState(s HistogramState) error {
	o, err := FromState(s)
	if err != nil {
		return err
	}
	return h.Merge(o)
}

// String renders a one-line summary suited for bench harness output.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Summary accumulates streaming mean/variance using Welford's algorithm and
// retains extrema. It is cheaper than a Histogram when quantiles are not
// needed.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe records one measurement.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the running mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance (n-1 denominator), or 0 for n < 2.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval for the mean
// under a normal approximation, or 0 for n < 2.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// Merge folds another summary into s (parallel-merge formula).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g min=%.6g max=%.6g", s.n, s.mean, s.CI95(), s.min, s.max)
}

// JainIndex computes Jain's fairness index over per-entity allocations:
// (Σx)² / (n·Σx²). Returns 1 for an empty or all-zero input by convention
// (nothing is unfairly shared).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Percentile returns the p-th percentile (0–100) of xs by sorting a copy and
// interpolating linearly. It is intended for offline analysis, not hot paths.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	pos := p / 100 * float64(len(c)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[i]*(1-frac) + c[i+1]*frac
}

// Table formats aligned benchmark-style rows: header then rows, columns
// separated by at least two spaces. Used by cmd/pran-bench to print the
// per-experiment tables recorded in EXPERIMENTS.md.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, hcell := range header {
		width[i] = len(hcell)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				for p := len(cell); p < width[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
