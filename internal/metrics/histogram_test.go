package metrics

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1e-6, 10, 256)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if math.Abs(h.Mean()-0.0505) > 1e-9 {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Min() != 1e-3 || h.Max() != 0.1 {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	med := h.Quantile(0.5)
	if med < 0.04 || med > 0.06 {
		t.Fatalf("median %v outside [0.04, 0.06]", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.09 || p99 > 0.11 {
		t.Fatalf("p99 %v", p99)
	}
}

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Observe(0.001)
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatal("quantile on zero-value histogram broken")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(0.5)
	if h.Quantile(0) != 0.5 || h.Quantile(1) != 0.5 {
		t.Fatal("single-observation quantile edges wrong")
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(1e-3, 1, 64)
	h.Observe(1e-6) // below
	h.Observe(100)  // above
	if h.Count() != 2 {
		t.Fatal("out-of-range observations must still count")
	}
	if h.Max() != 100 || h.Min() != 1e-6 {
		t.Fatal("extrema must track out-of-range values")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1e-6, 10, 128)
	b := NewHistogram(1e-6, 10, 128)
	for i := 0; i < 500; i++ {
		a.Observe(0.001)
		b.Observe(0.1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1000 {
		t.Fatalf("merged count %d", a.Count())
	}
	med := a.Quantile(0.5)
	if med < 0.0009 || med > 0.12 {
		t.Fatalf("merged median %v", med)
	}
	c := NewHistogram(1e-5, 10, 128)
	if err := a.Merge(c); err == nil {
		t.Fatal("layout mismatch accepted")
	}
}

func TestHistogramMergeCrossSpecError(t *testing.T) {
	// Every way two specs can differ must fail loudly with ErrSpecMismatch;
	// the error text must name both layouts so a scrape-merge failure is
	// diagnosable from the log line alone.
	base := NewHistogram(1e-6, 10, 128)
	for _, other := range []*Histogram{
		NewHistogram(1e-5, 10, 128), // different min
		NewHistogram(1e-6, 20, 128), // different max
		NewHistogram(1e-6, 10, 64),  // different resolution
	} {
		err := base.Merge(other)
		if !errors.Is(err, ErrSpecMismatch) {
			t.Fatalf("cross-spec merge: got %v, want ErrSpecMismatch", err)
		}
		if !strings.Contains(err.Error(), "128") {
			t.Fatalf("error %q does not name the receiver layout", err)
		}
	}
	// Matching specs must still merge.
	if err := base.Merge(NewHistogram(1e-6, 10, 128)); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeOverflowBuckets(t *testing.T) {
	// Observations below min and at/above max live in the low/high overflow
	// counters; a merge must carry them across, keep the total count
	// consistent, and keep quantiles clamping to the covered range.
	a := NewHistogram(1e-3, 1, 64)
	b := NewHistogram(1e-3, 1, 64)
	for i := 0; i < 10; i++ {
		a.Observe(1e-6) // low overflow in a
		b.Observe(50)   // high overflow in b
	}
	a.Observe(0.5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	st := a.State()
	if st.Low != 10 || st.High != 10 {
		t.Fatalf("overflow counters low=%d high=%d after merge", st.Low, st.High)
	}
	var inRange uint64
	for _, c := range st.Buckets {
		inRange += c
	}
	if st.Count != st.Low+st.High+inRange {
		t.Fatalf("count %d != low %d + high %d + buckets %d", st.Count, st.Low, st.High, inRange)
	}
	if a.Count() != 21 {
		t.Fatalf("merged count %d", a.Count())
	}
	// Quantiles clamp: the lowest mass sits at the range floor, the highest
	// beyond the ceiling (reported as the observed max).
	if q := a.Quantile(0.01); q > 1e-3 {
		t.Fatalf("low-overflow quantile %v above range floor", q)
	}
	if q := a.Quantile(1); q != 50 {
		t.Fatalf("max quantile %v, want observed max 50", q)
	}
	if a.Min() != 1e-6 || a.Max() != 50 {
		t.Fatalf("extrema %v/%v not carried through merge", a.Min(), a.Max())
	}
}

func TestHistogramStateRoundtrip(t *testing.T) {
	h := NewHistogram(1e-6, 10, 128)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h.Observe(math.Exp(rng.NormFloat64()*2 - 6))
	}
	h.Observe(1e-9) // force an overflow each side
	h.Observe(100)
	got, err := FromState(h.State())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Mean() != h.Mean() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("state roundtrip changed summary: %v vs %v", got, h)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Fatalf("quantile %v changed through roundtrip", q)
		}
	}
	// MergeState doubles everything.
	if err := got.MergeState(h.State()); err != nil {
		t.Fatal(err)
	}
	if got.Count() != 2*h.Count() {
		t.Fatalf("merge-state count %d", got.Count())
	}
	// Cross-spec state is rejected both on rebuild and on merge.
	bad := h.State()
	bad.Min = 0
	if _, err := FromState(bad); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("invalid state accepted: %v", err)
	}
	other := NewHistogram(1e-5, 10, 128).State()
	if err := got.MergeState(other); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("cross-spec merge-state accepted: %v", err)
	}
}

func TestHistogramStateEmptyEncodable(t *testing.T) {
	// An empty histogram's internal extrema are ±Inf; the exported state
	// must stay JSON-encodable.
	st := NewHistogram(1e-6, 10, 8).State()
	if st.VMin != 0 || st.VMax != 0 {
		t.Fatalf("empty-state extrema %v/%v not normalized", st.VMin, st.VMax)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("empty state not JSON-encodable: %v", err)
	}
	h, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.5)
	if h.Min() != 0.5 || h.Max() != 0.5 {
		t.Fatal("rebuilt empty histogram lost ±Inf extrema sentinels")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1e-6, 10, 64)
	h.Observe(0.5)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	NewHistogram(-1, 10, 64)
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Log-uniform samples: quantile estimates must land within a bucket
	// width of the true quantiles.
	rng := rand.New(rand.NewSource(5))
	h := NewHistogram(1e-6, 16, 512)
	var xs []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64()*math.Log(1e6)) * 1e-6 // [1e-6, 1]
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est := h.Quantile(q)
		true_ := Percentile(xs, q*100)
		ratio := est / true_
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("q=%v: est %v vs true %v", q, est, true_)
		}
	}
}

func TestSummaryWelford(t *testing.T) {
	var s Summary
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		s.Observe(v)
	}
	if s.Count() != 8 || s.Mean() != 5 {
		t.Fatalf("mean %v count %d", s.Mean(), s.Count())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatal("extrema wrong")
	}
	if s.CI95() <= 0 {
		t.Fatal("CI must be positive for n ≥ 2")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var all, a, b Summary
		for i := 0; i < 200; i++ {
			v := rng.NormFloat64()*3 + 10
			all.Observe(v)
			if i%2 == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		a.Merge(&b)
		return a.Count() == all.Count() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Observe(1)
	a.Merge(&b) // no-op
	if a.Count() != 1 {
		t.Fatal("merging empty changed count")
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatal("merging into empty broken")
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 1 {
		t.Fatal("empty should be 1")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("all-zero should be 1")
	}
	if v := JainIndex([]float64{1, 1, 1, 1}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("equal allocation: %v", v)
	}
	// One user hogging everything among n: index = 1/n.
	if v := JainIndex([]float64{1, 0, 0, 0}); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("max unfairness: %v", v)
	}
	mid := JainIndex([]float64{1, 2, 3})
	if mid <= 0.25 || mid >= 1 {
		t.Fatalf("intermediate fairness %v out of range", mid)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("edge percentiles wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median %v", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Must not modify input.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
	// Interpolation: p25 of [1..5] = 2.
	if v := Percentile(xs, 25); v != 2 {
		t.Fatalf("p25 = %v", v)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "long-header") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/separator malformed: %q %q", lines[0], lines[1])
	}
	if !strings.HasPrefix(lines[3], "333333") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(0.001)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("String: %q", h.String())
	}
	var s Summary
	s.Observe(2)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String: %q", s.String())
	}
}
